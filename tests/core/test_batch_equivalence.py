"""Batch pipeline equivalence: put_many/update_many/delete_many must leave
the store byte-identical to the same operations applied sequentially.

Every test builds two identically seeded, identically warmed stores,
drives one through the single-op API and the other through the batch API,
and asserts full state equality: NVM data zone, validity bitmap contents,
hash-index contents, data-zone wear counters (per-address, per-bit, and
every aggregate including the float latency totals, which the batch path
accumulates in the same order), pool free-list order, live count, and the
operation counters.

The one deliberate difference is the *flag region's* write count: the
batch pipeline coalesces validity-bit updates per 4-byte flag word (the
bitmap bytes still end up identical), so flag-region wear is asserted to
be <= the sequential path's rather than equal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PNWConfig, PNWStore
from repro.errors import DuplicateKeyError, KeyNotFoundError, PoolExhaustedError
from tests.conftest import clustered_values


def make_config(**overrides) -> PNWConfig:
    base = dict(
        num_buckets=256,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
    )
    base.update(overrides)
    return PNWConfig(**base)


def make_store_pair(**overrides) -> tuple[PNWStore, PNWStore]:
    """Two independent stores with identical config, warm-up, and model."""
    stores = []
    for _ in range(2):
        config = make_config(**overrides)
        rng = np.random.default_rng(42)
        old = clustered_values(rng, config.num_buckets, config.value_bytes)
        store = PNWStore(config)
        store.warm_up(old)
        stores.append(store)
    return stores[0], stores[1]


def assert_stores_equal(sequential: PNWStore, batched: PNWStore) -> None:
    """Full state equality (see module docstring for the flag-wear rule)."""
    assert np.array_equal(sequential.nvm.snapshot(), batched.nvm.snapshot())
    assert np.array_equal(
        sequential.flags_nvm.snapshot(), batched.flags_nvm.snapshot()
    )
    if hasattr(sequential.index, "items"):
        assert dict(sequential.index.items()) == dict(batched.index.items())
    else:  # NVM path-hashing index: compare the persisted slots directly
        assert np.array_equal(
            sequential.index.nvm.snapshot(), batched.index.nvm.snapshot()
        )
    assert np.array_equal(
        sequential.nvm.stats.writes_per_address,
        batched.nvm.stats.writes_per_address,
    )
    assert sequential.nvm.stats.summary() == batched.nvm.stats.summary()
    if sequential.nvm.stats.bit_wear is not None:
        assert np.array_equal(
            sequential.nvm.stats.bit_wear, batched.nvm.stats.bit_wear
        )
    assert sequential.pool._free_lists == batched.pool._free_lists
    assert np.array_equal(
        sequential.pool._available, batched.pool._available
    )
    assert len(sequential) == len(batched)
    for counter in ("puts", "gets", "deletes", "updates", "retrains",
                    "fallbacks"):
        assert getattr(sequential.metrics, counter) == getattr(
            batched.metrics, counter
        ), counter
    assert (
        sequential.manager.model_version == batched.manager.model_version
    )
    if sequential.manager.model is not None:
        assert np.array_equal(
            sequential.manager.model.cluster_centers_,
            batched.manager.model.cluster_centers_,
        )
    # Coalesced flag-word programming may only ever *reduce* flag wear.
    assert (
        batched.flags_nvm.stats.total_writes
        <= sequential.flags_nvm.stats.total_writes
    )


def fresh_pairs(rng: np.random.Generator, n: int, width: int,
                prefix: str = "k") -> list[tuple[bytes, bytes]]:
    values = clustered_values(rng, n, width, flip_rate=0.05)
    return [
        (f"{prefix}{i}".encode(), values[i].tobytes()) for i in range(n)
    ]


class TestPutEquivalence:
    def test_put_many_matches_sequential(self):
        sequential, batched = make_store_pair()
        pairs = fresh_pairs(np.random.default_rng(1), 120, 24)
        seq_reports = [sequential.put(k, v) for k, v in pairs]
        bat_reports = batched.put_many(pairs)
        assert_stores_equal(sequential, batched)
        assert [r.address for r in seq_reports] == [
            r.address for r in bat_reports
        ]
        assert [r.cluster for r in seq_reports] == [
            r.cluster for r in bat_reports
        ]
        assert [r.bit_updates for r in seq_reports] == [
            r.bit_updates for r in bat_reports
        ]

    def test_put_many_with_bit_wear_tracking(self):
        sequential, batched = make_store_pair(track_bit_wear=True)
        pairs = fresh_pairs(np.random.default_rng(2), 80, 24)
        for key, value in pairs:
            sequential.put(key, value)
        batched.put_many(pairs)
        assert_stores_equal(sequential, batched)

    def test_put_many_across_retrains(self):
        """Retrains fire mid-batch exactly where the sequential loop
        retrains, on identical zone contents."""
        sequential, batched = make_store_pair(
            load_factor=0.3, retrain_check_interval=16
        )
        pairs = fresh_pairs(np.random.default_rng(3), 150, 24)
        for key, value in pairs:
            sequential.put(key, value)
        batched.put_many(pairs)
        assert sequential.metrics.retrains > 1
        assert_stores_equal(sequential, batched)

    def test_put_many_on_cold_store_trains_mid_batch(self):
        config = dict(
            auto_train_fraction=0.1, retrain_check_interval=8,
            load_factor=1.0,
        )
        sequential = PNWStore(make_config(**config))
        batched = PNWStore(make_config(**config))
        pairs = fresh_pairs(np.random.default_rng(4), 100, 24)
        for key, value in pairs:
            sequential.put(key, value)
        batched.put_many(pairs)
        assert batched.manager.is_trained
        assert_stores_equal(sequential, batched)

    def test_duplicate_keys_in_batch_route_through_update(self):
        sequential, batched = make_store_pair()
        rng = np.random.default_rng(5)
        pairs = fresh_pairs(rng, 40, 24) + fresh_pairs(rng, 40, 24)
        for key, value in pairs:
            sequential.put(key, value)
        batched.put_many(pairs)
        assert batched.metrics.updates == 40
        assert_stores_equal(sequential, batched)

    def test_put_many_nvm_index(self):
        sequential, batched = make_store_pair(index_placement="nvm")
        pairs = fresh_pairs(np.random.default_rng(6), 60, 24)
        for key, value in pairs:
            sequential.put(key, value)
        batched.put_many(pairs)
        assert_stores_equal(sequential, batched)
        # Index-device wear must match exactly: one accounted lookup and
        # insert per operation on both paths.
        assert (
            sequential.index.nvm.stats.summary()
            == batched.index.nvm.stats.summary()
        )

    def test_empty_batch(self):
        _, batched = make_store_pair()
        assert batched.put_many([]) == []
        assert batched.delete_many([]) == []
        assert batched.update_many([]) == []

    @pytest.mark.parametrize("method", ["put_many", "update_many"])
    def test_oversized_value_rejects_whole_batch_unmutated(self, method):
        """Validation covers the whole batch, including items past the
        first chunk boundary (regression: chunk-local validation used to
        commit earlier chunks before rejecting)."""
        _, store = make_store_pair()
        store.put(b"a", b"x")
        before = store.nvm.snapshot()
        puts_before = store.metrics.puts
        huge = bytes(store.config.value_bytes + 1)
        # "a" twice forces a chunk break before the bad value is reached.
        batch = [(b"a", b"y"), (b"a", b"z"), (b"fresh", huge)]
        with pytest.raises(ValueError, match="exceeds"):
            getattr(store, method)(batch)
        assert np.array_equal(store.nvm.snapshot(), before)
        assert store.metrics.puts == puts_before
        assert store.get(b"a").startswith(b"x")
        assert b"fresh" not in store

    def test_pool_exhaustion_commits_prefix(self):
        """Both paths die on the same key and leave the same state."""
        seq_cfg = make_config(num_buckets=16, n_clusters=2)
        sequential, batched = PNWStore(seq_cfg), PNWStore(make_config(
            num_buckets=16, n_clusters=2))
        rng = np.random.default_rng(7)
        old = clustered_values(rng, 16, 24)
        sequential.warm_up(old)
        batched.warm_up(old)
        pairs = fresh_pairs(np.random.default_rng(8), 20, 24)
        seq_done = 0
        with pytest.raises(PoolExhaustedError):
            for key, value in pairs:
                sequential.put(key, value)
                seq_done += 1
        with pytest.raises(PoolExhaustedError) as excinfo:
            batched.put_many(pairs)
        assert seq_done == 16
        assert_stores_equal(sequential, batched)
        # The escaping error names exactly the pairs that landed, so a
        # caller can retry the remainder without re-putting.
        committed = excinfo.value.committed_reports
        assert [r.key for r in committed] == [
            key.ljust(8, b"\x00") for key, _ in pairs[:16]
        ]

    def test_exhaustion_committed_reports_span_chunks(self):
        """committed_reports covers earlier chunks, not just the failing
        one (regression: the chunk-local partial_addresses alone would
        hide fully committed chunks)."""
        _, store = make_store_pair(
            num_buckets=32, n_clusters=2, retrain_check_interval=8,
            load_factor=1.0,
        )
        pairs = fresh_pairs(np.random.default_rng(20), 40, 24)
        with pytest.raises(PoolExhaustedError) as excinfo:
            store.put_many(pairs)
        committed = excinfo.value.committed_reports
        assert len(committed) == 32  # 8-op chunks: 4 full chunks landed
        assert len(store) == 32
        for report in committed:
            assert report.key.rstrip(b"\x00").decode().startswith("k")


class TestDeleteEquivalence:
    def test_delete_many_matches_sequential(self):
        sequential, batched = make_store_pair()
        pairs = fresh_pairs(np.random.default_rng(9), 100, 24)
        for store in (sequential, batched):
            store.put_many(pairs)
        doomed = [key for key, _ in pairs[10:70]]
        for key in doomed:
            sequential.delete(key)
        batched.delete_many(doomed)
        assert_stores_equal(sequential, batched)

    def test_missing_key_raises_after_prefix(self):
        sequential, batched = make_store_pair()
        pairs = fresh_pairs(np.random.default_rng(10), 10, 24)
        for store in (sequential, batched):
            store.put_many(pairs)
        keys = [pairs[0][0], pairs[1][0], b"ghost", pairs[2][0]]
        with pytest.raises(KeyNotFoundError):
            for key in keys:
                sequential.delete(key)
        with pytest.raises(KeyNotFoundError):
            batched.delete_many(keys)
        assert b"ghost" not in batched
        assert pairs[2][0].ljust(8, b"\x00") in batched.index
        assert_stores_equal(sequential, batched)


class TestUpdateEquivalence:
    @pytest.mark.parametrize("update_mode", ["endurance", "latency"])
    def test_update_many_matches_sequential(self, update_mode):
        sequential, batched = make_store_pair(update_mode=update_mode)
        rng = np.random.default_rng(11)
        pairs = fresh_pairs(rng, 80, 24)
        for store in (sequential, batched):
            store.put_many(pairs)
        new_values = clustered_values(rng, 80, 24, flip_rate=0.1)
        updates = [
            (pairs[i][0], new_values[i].tobytes()) for i in range(80)
        ]
        for key, value in updates:
            sequential.update(key, value)
        batched.update_many(updates)
        assert_stores_equal(sequential, batched)

    def test_update_many_across_retrains(self):
        sequential, batched = make_store_pair(
            load_factor=0.2, retrain_check_interval=16
        )
        rng = np.random.default_rng(12)
        pairs = fresh_pairs(rng, 120, 24)
        for store in (sequential, batched):
            store.put_many(pairs)
        new_values = clustered_values(rng, 120, 24, flip_rate=0.1)
        updates = [
            (pairs[i][0], new_values[i].tobytes()) for i in range(120)
        ]
        for key, value in updates:
            sequential.update(key, value)
        batched.update_many(updates)
        assert sequential.metrics.retrains > 1
        assert_stores_equal(sequential, batched)

    def test_update_many_nvm_index_accounting(self):
        """Endurance updates on the persistent index must report the
        same index-region traffic on both paths (regression: the batch
        path used to skip the PUT-side membership lookup)."""
        sequential, batched = make_store_pair(index_placement="nvm")
        rng = np.random.default_rng(15)
        pairs = fresh_pairs(rng, 30, 24)
        for store in (sequential, batched):
            store.put_many(pairs)
        new_values = clustered_values(rng, 30, 24, flip_rate=0.1)
        updates = [
            (pairs[i][0], new_values[i].tobytes()) for i in range(30)
        ]
        for key, value in updates:
            sequential.update(key, value)
        batched.update_many(updates)
        assert_stores_equal(sequential, batched)
        assert (
            sequential.index.nvm.stats.summary()
            == batched.index.nvm.stats.summary()
        )

    def test_repeated_key_in_update_batch(self):
        sequential, batched = make_store_pair()
        pairs = fresh_pairs(np.random.default_rng(13), 20, 24)
        for store in (sequential, batched):
            store.put_many(pairs)
        updates = [
            (pairs[3][0], b"first"), (pairs[5][0], b"other"),
            (pairs[3][0], b"second"),
        ]
        for key, value in updates:
            sequential.update(key, value)
        batched.update_many(updates)
        for store in (sequential, batched):
            assert store.get(pairs[3][0]).startswith(b"second")
        assert_stores_equal(sequential, batched)

    def test_missing_key_mid_update_batch(self):
        sequential, batched = make_store_pair()
        pairs = fresh_pairs(np.random.default_rng(14), 10, 24)
        for store in (sequential, batched):
            store.put_many(pairs)
        updates = [
            (pairs[0][0], b"x"), (b"ghost", b"y"), (pairs[1][0], b"z"),
        ]
        with pytest.raises(KeyNotFoundError):
            for key, value in updates:
                sequential.update(key, value)
        with pytest.raises(KeyNotFoundError):
            batched.update_many(updates)
        for store in (sequential, batched):
            assert store.get(pairs[0][0]).startswith(b"x")
        assert_stores_equal(sequential, batched)


class TestRandomizedMixedWorkload:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_scripted_mixed_ops(self, seed):
        """Random op scripts, grouped into batches of consecutive
        same-op runs, stay equivalent to sequential execution."""
        sequential, batched = make_store_pair(
            load_factor=0.4, retrain_check_interval=32
        )
        rng = np.random.default_rng(100 + seed)
        live: list[bytes] = []
        next_id = 0
        script: list[tuple[str, list[tuple[bytes, bytes]] | list[bytes]]] = []
        for _ in range(12):
            op = rng.choice(["put", "update", "delete"])
            size = int(rng.integers(1, 25))
            if op == "put":
                batch = []
                for _ in range(size):
                    key = f"m{next_id}".encode()
                    next_id += 1
                    value = clustered_values(rng, 1, 24)[0].tobytes()
                    batch.append((key, value))
                    live.append(key)
                script.append(("put", batch))
            elif op == "update" and live:
                picks = rng.choice(len(live), size=min(size, len(live)),
                                   replace=False)
                script.append((
                    "update",
                    [(live[p], clustered_values(rng, 1, 24)[0].tobytes())
                     for p in picks],
                ))
            elif op == "delete" and live:
                picks = sorted(
                    rng.choice(len(live), size=min(size, len(live)),
                               replace=False),
                    reverse=True,
                )
                doomed = [live.pop(p) for p in picks]
                script.append(("delete", doomed))
        for op, batch in script:
            if op == "put":
                for key, value in batch:
                    sequential.put(key, value)
                batched.put_many(batch)
            elif op == "update":
                for key, value in batch:
                    sequential.update(key, value)
                batched.update_many(batch)
            else:
                for key in batch:
                    sequential.delete(key)
                batched.delete_many(batch)
        assert_stores_equal(sequential, batched)


class TestDuplicateKeyConsistency:
    """Regression: DuplicateKeyError must be raised consistently by the
    single and batch insert-only paths, without partial mutation."""

    def test_put_unique_raises_on_existing_key(self):
        _, store = make_store_pair()
        store.put_unique(b"k1", b"v")
        with pytest.raises(DuplicateKeyError):
            store.put_unique(b"k1", b"w")
        assert store.get(b"k1").startswith(b"v")

    def test_put_many_unique_raises_on_existing_key(self):
        _, store = make_store_pair()
        store.put(b"k1", b"v")
        before = store.nvm.snapshot()
        with pytest.raises(DuplicateKeyError):
            store.put_many([(b"new", b"x"), (b"k1", b"y")], unique=True)
        # Atomic validation: nothing was written, not even the fresh key.
        assert np.array_equal(store.nvm.snapshot(), before)
        assert b"new" not in store

    def test_put_many_unique_rejects_in_batch_duplicates(self):
        _, store = make_store_pair()
        before = store.nvm.snapshot()
        with pytest.raises(DuplicateKeyError):
            store.put_many([(b"dup", b"x"), (b"dup", b"y")], unique=True)
        assert np.array_equal(store.nvm.snapshot(), before)
        assert b"dup" not in store

    def test_normalization_consistency(self):
        """A short key and its zero-padded form are the same key on both
        paths."""
        _, store = make_store_pair()
        store.put_unique(b"k1", b"v")
        with pytest.raises(DuplicateKeyError):
            store.put_many([(b"k1\x00\x00", b"w")], unique=True)

    def test_plain_put_many_still_upserts(self):
        sequential, batched = make_store_pair()
        for store in (sequential, batched):
            store.put(b"k1", b"old")
        sequential.put(b"k1", b"new")
        batched.put_many([(b"k1", b"new")])
        for store in (sequential, batched):
            assert store.get(b"k1").startswith(b"new")
        assert batched.metrics.updates == 1
        assert_stores_equal(sequential, batched)

"""The staged mutation engine: delegation, planning, and error contracts.

The byte-identity of the engine's stages is pinned by the batch
equivalence / recovery / probe-oracle suites; this module covers the
engine layer itself — that both stores execute mutations through one
pipeline, that the plan stage carves batches correctly, that the
uniqueness pre-check is a single shared implementation, and that misses
raise :class:`KeyNotFoundError` (never a bare :class:`KeyError`)
consistently across ``PNWStore`` and ``ShardedPNWStore``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PNWConfig, PNWStore, ShardedPNWStore
from repro.engine import MutationEngine, check_unique
from repro.engine.pipeline import PutChunk, SingleUpdate
from repro.engine import plan as plan_stage
from repro.errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    PoolExhaustedError,
    ReproError,
)
from tests.conftest import clustered_values


def make_store(shards: int = 1, **overrides) -> PNWStore | ShardedPNWStore:
    base = dict(
        num_buckets=256,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        shards=shards,
    )
    base.update(overrides)
    config = PNWConfig(**base)
    store = (
        PNWStore(config) if shards == 1 else ShardedPNWStore(config)
    )
    rng = np.random.default_rng(42)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


def value(i: int) -> bytes:
    return np.random.default_rng(i).integers(
        0, 256, 24, dtype=np.uint8
    ).tobytes()


class TestEngineDelegation:
    def test_store_owns_one_engine(self):
        store = make_store()
        assert isinstance(store.engine, MutationEngine)
        assert store.engine.store is store

    def test_store_has_no_legacy_batch_loops(self):
        """The hand-copied plan/commit loops must be gone from the store."""
        for name in (
            "_put_chunk",
            "_commit_puts",
            "_commit_deletes",
            "_update_chunk_endurance",
            "_update_chunk_latency",
            "_commit_update_chunk",
            "_replay_update_deletes",
            "_batch_step",
        ):
            assert not hasattr(PNWStore, name), name

    def test_sharded_mutations_flow_through_shard_engines(self):
        store = make_store(shards=4)
        calls = []
        for shard in store.stores:
            original = shard.engine.put_many

            def spy(pairs, *, unique=False, _original=original, _shard=shard):
                calls.append(_shard)
                return _original(pairs, unique=unique)

            shard.engine.put_many = spy
        store.put_many([(f"k{i}".encode(), value(i)) for i in range(16)])
        assert set(calls) <= set(store.stores)
        assert len(calls) >= 2  # 16 keys hash across several shards

    def test_engine_entry_point_is_the_store_api(self):
        store = make_store()
        report = store.engine.put_many([(b"a", value(1))])[0]
        assert report.op == "put"
        assert store.get(b"a") == value(1).ljust(24, b"\x00")


class TestPlanStage:
    def test_put_plan_routes_existing_keys_to_update(self):
        store = make_store()
        store.put(b"seen", value(0))
        items = [
            (store.engine._normalize(b"fresh1"), value(1)),
            (store.engine._normalize(b"seen"), value(2)),
            (store.engine._normalize(b"fresh2"), value(3)),
        ]
        kinds = []
        for chunk in plan_stage.plan_puts(store.engine, items):
            kinds.append(type(chunk))
            chunk.execute(store.engine)
        assert kinds == [PutChunk, SingleUpdate, PutChunk]

    def test_put_plan_cuts_chunks_at_duplicate_keys(self):
        store = make_store()
        key = store.engine._normalize(b"dup")
        items = [(key, value(1)), (key, value(2))]
        chunks = []
        for chunk in plan_stage.plan_puts(store.engine, items):
            chunks.append(chunk)
            chunk.execute(store.engine)
        # First occurrence is a fresh PUT; the second sees the key in the
        # index and becomes an update.
        assert [type(c) for c in chunks] == [PutChunk, SingleUpdate]

    def test_put_plan_respects_retrain_cap(self):
        store = make_store(retrain_check_interval=8, load_factor=1.0)
        items = [
            (store.engine._normalize(f"k{i}".encode()), value(i))
            for i in range(20)
        ]
        sizes = []
        for chunk in plan_stage.plan_puts(store.engine, items):
            assert isinstance(chunk, PutChunk)
            sizes.append(len(chunk.keys))
            chunk.execute(store.engine)
        assert sum(sizes) == 20
        assert all(size <= 8 for size in sizes)

    def test_oversized_value_rejects_batch_before_mutation(self):
        store = make_store()
        snapshot = store.nvm.snapshot()
        with pytest.raises(ValueError, match="exceeds bucket size"):
            store.put_many([(b"ok", value(1)), (b"bad", b"x" * 100)])
        assert np.array_equal(store.nvm.snapshot(), snapshot)
        assert b"ok" not in store


class TestUniqueCheck:
    def test_shared_error_text_single_and_sharded(self):
        single = make_store()
        sharded = make_store(shards=4)
        single.put(b"taken", value(1))
        sharded.put(b"taken", value(1))
        with pytest.raises(DuplicateKeyError) as single_exc:
            single.put_many([(b"taken", value(2))], unique=True)
        with pytest.raises(DuplicateKeyError) as sharded_exc:
            sharded.put_many([(b"taken", value(2))], unique=True)
        assert str(single_exc.value) == str(sharded_exc.value)

    def test_check_unique_rejects_in_batch_duplicates(self):
        with pytest.raises(DuplicateKeyError):
            check_unique([b"a", b"b", b"a"], lambda key: False)

    def test_check_unique_rejects_existing(self):
        with pytest.raises(DuplicateKeyError, match="already exists"):
            check_unique([b"a"], lambda key: key == b"a")
        check_unique([b"a", b"b"], lambda key: False)  # clean batch passes

    def test_unique_reject_leaves_sharded_store_untouched(self):
        store = make_store(shards=2)
        store.put(b"existing", value(1))
        before = [shard.nvm.snapshot() for shard in store.stores]
        with pytest.raises(DuplicateKeyError):
            store.put_many(
                [(b"new", value(2)), (b"existing", value(3))], unique=True
            )
        for shard, snap in zip(store.stores, before):
            assert np.array_equal(shard.nvm.snapshot(), snap)
        assert b"new" not in store


class TestKeyNotFoundContract:
    """GET/DELETE/UPDATE misses raise KeyNotFoundError on both stores."""

    @pytest.mark.parametrize("shards", [1, 4])
    def test_get_miss(self, shards):
        store = make_store(shards=shards)
        with pytest.raises(KeyNotFoundError) as exc:
            store.get(b"missing")
        assert isinstance(exc.value, KeyError)
        assert isinstance(exc.value, ReproError)

    @pytest.mark.parametrize("shards", [1, 4])
    def test_delete_miss(self, shards):
        store = make_store(shards=shards)
        with pytest.raises(KeyNotFoundError):
            store.delete(b"missing")

    @pytest.mark.parametrize("shards", [1, 4])
    def test_update_miss(self, shards):
        store = make_store(shards=shards)
        with pytest.raises(KeyNotFoundError):
            store.update(b"missing", value(0))

    def test_delete_many_miss_carries_committed_reports(self):
        store = make_store()
        store.put(b"a", value(1))
        store.put(b"b", value(2))
        with pytest.raises(KeyNotFoundError) as exc:
            store.delete_many([b"a", b"missing", b"b"])
        committed = exc.value.committed_reports
        assert [r.key for r in committed] == [b"a".ljust(8, b"\x00")]
        assert b"a" not in store  # prefix applied
        assert b"b" in store  # suffix untouched

    def test_update_many_miss_carries_committed_reports(self):
        store = make_store()
        store.put(b"a", value(1))
        with pytest.raises(KeyNotFoundError) as exc:
            store.update_many([(b"a", value(9)), (b"missing", value(8))])
        committed = exc.value.committed_reports
        assert [r.key for r in committed] == [b"a".ljust(8, b"\x00")]
        assert store.get(b"a") == value(9).ljust(24, b"\x00")


class TestShardedCommittedReports:
    def test_delete_many_miss_aggregates_across_shards_globalized(self):
        """A mid-batch miss on one shard must surface committed_reports
        covering every sibling shard's completed sub-batch, with global
        addresses — the same contract as pool exhaustion."""
        store = make_store(shards=4)
        keys = [f"k{i}".encode() for i in range(24)]
        put_reports = store.put_many(
            [(key, value(i)) for i, key in enumerate(keys)]
        )
        put_address = {
            report.key: report.address for report in put_reports
        }
        with pytest.raises(KeyNotFoundError) as exc:
            store.delete_many(keys[:12] + [b"missing"] + keys[12:])
        committed = exc.value.committed_reports
        # Every key the call actually deleted is reported exactly once...
        committed_keys = {report.key.rstrip(b"\x00") for report in committed}
        deleted_keys = {key for key in keys if key not in store}
        assert committed_keys == deleted_keys
        assert len(committed) == len(deleted_keys)
        # ...with addresses in the *global* space: each delete report
        # names exactly the global address its PUT landed on.
        for report in committed:
            assert report.address == put_address[report.key]
        # The miss's own shard committed only its prefix; siblings all
        # finished their sub-batches.
        missing_shard = store.shard_of_key(b"missing")
        for shard_id in range(store.n_shards):
            shard_keys = [k for k in keys
                          if store.shard_of_key(k) == shard_id]
            survivors = [k for k in shard_keys if k in store]
            if shard_id != missing_shard:
                assert not survivors  # sibling sub-batch ran to completion


class TestPoolExhaustionThroughEngine:
    def test_committed_reports_prefix(self):
        store = make_store(num_buckets=8, n_clusters=2, probe_limit=-1)
        pairs = [(f"k{i}".encode(), value(i)) for i in range(12)]
        with pytest.raises(PoolExhaustedError) as exc:
            store.put_many(pairs)
        committed = exc.value.committed_reports
        assert len(committed) == 8
        keys = [r.key.rstrip(b"\x00") for r in committed]
        assert keys == [f"k{i}".encode() for i in range(8)]
        for key in keys:
            assert key in store

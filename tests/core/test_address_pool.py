"""Tests for the dynamic address pool."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DynamicAddressPool
from repro.errors import PoolExhaustedError


@pytest.fixture
def pool() -> DynamicAddressPool:
    pool = DynamicAddressPool(n_clusters=3, num_addresses=12)
    labels = np.array([0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2])
    pool.rebuild(labels, np.arange(12))
    return pool


class TestRebuild:
    def test_cluster_sizes(self, pool):
        assert pool.cluster_sizes() == [4, 4, 4]
        assert pool.total_free == 12

    def test_partial_rebuild_leaves_rest_unavailable(self):
        pool = DynamicAddressPool(2, 10)
        pool.rebuild(np.array([0, 1]), np.array([3, 7]))
        assert pool.total_free == 2
        assert 3 in pool and 7 in pool
        assert 0 not in pool

    def test_label_out_of_range(self):
        pool = DynamicAddressPool(2, 4)
        with pytest.raises(ValueError, match="label out of cluster range"):
            pool.rebuild(np.array([5]), np.array([0]))

    def test_shape_mismatch(self):
        pool = DynamicAddressPool(2, 4)
        with pytest.raises(ValueError):
            pool.rebuild(np.array([0, 1]), np.array([0]))


class TestGetRelease:
    def test_get_from_cluster(self, pool):
        addr = pool.get(1)
        assert 4 <= addr <= 7
        assert addr not in pool
        assert pool.total_free == 11

    def test_get_falls_back_when_empty(self, pool):
        for _ in range(4):
            pool.get(0)
        addr = pool.get(0)  # cluster 0 empty; any other cluster serves
        assert addr >= 4

    def test_fallback_order_respected(self, pool):
        for _ in range(4):
            pool.get(0)
        addr = pool.get(0, fallback_order=np.array([0, 2, 1]))
        assert 8 <= addr <= 11  # cluster 2 preferred over 1

    def test_exhaustion_raises(self):
        pool = DynamicAddressPool(1, 2)
        pool.rebuild(np.zeros(2, dtype=np.int64), np.arange(2))
        pool.get(0)
        pool.get(0)
        with pytest.raises(PoolExhaustedError):
            pool.get(0)

    def test_release_recycles(self, pool):
        addr = pool.get(0)
        pool.release(addr, 2)
        assert pool.cluster_of(addr) == 2
        assert pool.total_free == 12

    def test_double_release_rejected(self, pool):
        addr = pool.get(0)
        pool.release(addr, 0)
        with pytest.raises(ValueError, match="already in the pool"):
            pool.release(addr, 0)

    def test_release_bad_ranges(self, pool):
        with pytest.raises(ValueError):
            pool.release(99, 0)
        addr = pool.get(0)
        with pytest.raises(ValueError):
            pool.release(addr, 9)

    def test_free_fraction(self, pool):
        pool.get(0)
        assert pool.free_fraction == pytest.approx(11 / 12)


class TestGetBest:
    def test_picks_minimum_score(self, pool):
        # Score = distance from address 6.
        scorer = lambda addrs: np.abs(addrs - 6)
        addr = pool.get_best(1, scorer, probe_limit=4)
        assert addr == 6

    def test_probe_limit_zero_is_fifo(self, pool):
        scorer = lambda addrs: -addrs  # would prefer the largest
        addr = pool.get_best(0, scorer, probe_limit=0)
        assert addr == 0  # FIFO ignores the scorer

    def test_probe_limit_bounds_scan(self, pool):
        seen = []

        def scorer(addrs):
            seen.extend(addrs.tolist())
            return np.zeros(len(addrs))

        pool.get_best(0, scorer, probe_limit=2)
        assert len(seen) == 2

    def test_negative_probe_scans_all(self, pool):
        scorer = lambda addrs: -addrs
        addr = pool.get_best(2, scorer, probe_limit=-1)
        assert addr == 11  # best (largest) of cluster 2

    def test_fallback_when_cluster_empty(self, pool):
        for _ in range(4):
            pool.get(2)
        addr = pool.get_best(
            2, lambda a: np.zeros(len(a)), probe_limit=8,
            fallback_order=np.array([2, 0, 1]),
        )
        assert 0 <= addr <= 3

    def test_exhaustion(self):
        pool = DynamicAddressPool(2, 2)
        pool.rebuild(np.array([0, 0]), np.arange(2))
        pool.get(0)
        pool.get(0)
        with pytest.raises(PoolExhaustedError):
            pool.get_best(0, lambda a: np.zeros(len(a)), probe_limit=4)


class TestGetBestMany:
    """Bulk pop must match single pops exactly: same cluster-similarity
    ordering, same exhaustion fallback, same recycling behavior."""

    @staticmethod
    def twin_pools() -> tuple[DynamicAddressPool, DynamicAddressPool]:
        pools = []
        for _ in range(2):
            pool = DynamicAddressPool(n_clusters=3, num_addresses=12)
            pool.rebuild(
                np.array([0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]), np.arange(12)
            )
            pools.append(pool)
        return pools[0], pools[1]

    def test_matches_repeated_single_pops(self):
        single, bulk = self.twin_pools()
        rng = np.random.default_rng(0)
        clusters = rng.integers(0, 3, size=10)
        orders = np.array([rng.permutation(3) for _ in range(10)])
        scores = rng.random((10, 12))

        expected = [
            single.get_best(
                int(clusters[i]), lambda a, i=i: scores[i][a],
                probe_limit=4, fallback_order=orders[i],
            )
            for i in range(10)
        ]
        got, _ = bulk.get_best_many(
            clusters, lambda i, a: scores[i][a], 4, orders
        )
        assert expected == got.tolist()
        assert single._free_lists == bulk._free_lists
        assert np.array_equal(single._available, bulk._available)

    def test_fallback_follows_cluster_similarity_order(self):
        _, pool = self.twin_pools()
        for _ in range(4):
            pool.get(2)  # drain cluster 2
        addresses, fallback_used = pool.get_best_many(
            np.array([2, 2]),
            lambda i, addrs: np.zeros(len(addrs)),
            probe_limit=8,
            fallback_orders=np.array([[2, 0, 1], [2, 1, 0]]),
        )
        assert 0 <= addresses[0] <= 3  # first fallback: cluster 0
        assert 4 <= addresses[1] <= 7  # second request preferred cluster 1
        assert fallback_used.all()

    def test_fallback_flag_false_when_cluster_serves(self):
        _, pool = self.twin_pools()
        _, fallback_used = pool.get_best_many(
            np.array([0, 1]), lambda i, a: np.zeros(len(a)), 4
        )
        assert not fallback_used.any()

    def test_exhaustion_keeps_prefix_popped(self):
        pool = DynamicAddressPool(2, 3)
        pool.rebuild(np.array([0, 0, 1]), np.arange(3))
        with pytest.raises(PoolExhaustedError) as excinfo:
            pool.get_best_many(
                np.zeros(5, dtype=np.int64),
                lambda i, a: np.zeros(len(a)),
                probe_limit=4,
            )
        assert excinfo.value.partial_addresses.tolist() == [0, 1, 2]
        assert excinfo.value.partial_fallbacks.tolist() == [False, False, True]
        assert pool.total_free == 0  # the served prefix stays popped

    def test_recycled_addresses_serve_later_requests(self):
        single, bulk = self.twin_pools()
        for pool in (single, bulk):
            for _ in range(4):
                pool.get(0)
            pool.release(2, 0)  # one address comes back to cluster 0
        expected = single.get_best(
            0, lambda a: np.zeros(len(a)), probe_limit=4
        )
        got, fallback_used = bulk.get_best_many(
            np.array([0]), lambda i, a: np.zeros(len(a)), 4
        )
        assert expected == got[0] == 2
        assert not fallback_used[0]
        assert single._free_lists == bulk._free_lists

    def test_probe_limit_zero_degrades_to_fifo(self):
        single, bulk = self.twin_pools()
        expected = [single.get_best(1, lambda a: -a, 0) for _ in range(3)]
        got, _ = bulk.get_best_many(
            np.array([1, 1, 1]), lambda i, a: -a, 0
        )
        assert expected == got.tolist()

    def test_empty_request(self):
        _, pool = self.twin_pools()
        addresses, fallback_used = pool.get_best_many(
            np.array([], dtype=np.int64), lambda i, a: a, 4
        )
        assert addresses.size == 0 and fallback_used.size == 0
        assert pool.total_free == 12


class TestProbeEnginePayloads:
    """The engine path: payload matrices scored against the DRAM content
    cache must behave exactly like closure scorers over the device."""

    @staticmethod
    def cached_pool(rng, n_clusters=3, num_addresses=12, width=16):
        contents = rng.integers(0, 256, (num_addresses, width), dtype=np.uint8)

        def reader(addresses, out):
            np.take(contents, addresses, axis=0, out=out)

        pool = DynamicAddressPool(
            n_clusters, num_addresses, content_reader=reader, row_bytes=width
        )
        labels = np.arange(num_addresses) % n_clusters
        pool.rebuild(labels, np.arange(num_addresses))
        return pool, contents

    @staticmethod
    def hamming(contents, addrs, payload):
        return np.unpackbits(
            contents[np.asarray(addrs)] ^ payload, axis=1
        ).sum(axis=1)

    def test_get_best_payload_matches_scorer(self, rng):
        pool, contents = self.cached_pool(rng)
        twin, _ = self.cached_pool(np.random.default_rng(12345))
        payload = rng.integers(0, 256, 16, dtype=np.uint8)
        expected = twin.get_best(
            1, lambda addrs: self.hamming(contents, addrs, payload), -1
        )
        assert pool.get_best(1, payload, -1) == expected

    def test_get_best_many_payloads_match_scorers(self, rng):
        pool, contents = self.cached_pool(rng)
        twin, _ = self.cached_pool(np.random.default_rng(12345))
        payloads = rng.integers(0, 256, (8, 16), dtype=np.uint8)
        clusters = rng.integers(0, 3, 8)
        expected, expected_fb = twin.get_best_many(
            clusters,
            lambda i, addrs: self.hamming(contents, addrs, payloads[i]),
            -1,
        )
        got, got_fb = pool.get_best_many(clusters, payloads, -1)
        assert got.tolist() == expected.tolist()
        assert got_fb.tolist() == expected_fb.tolist()
        assert pool._free_lists == twin._free_lists

    def test_grouped_requests_score_one_window(self, rng):
        # All requests in one cluster exercise the cross-distance path.
        pool, contents = self.cached_pool(rng)
        twin, _ = self.cached_pool(np.random.default_rng(12345))
        payloads = rng.integers(0, 256, (4, 16), dtype=np.uint8)
        clusters = np.zeros(4, dtype=np.int64)
        expected, _ = twin.get_best_many(
            clusters,
            lambda i, addrs: self.hamming(contents, addrs, payloads[i]),
            -1,
        )
        got, _ = pool.get_best_many(clusters, payloads, -1)
        assert got.tolist() == expected.tolist()

    def test_releases_interleave_before_each_pop(self, rng):
        pool, contents = self.cached_pool(rng)
        twin, _ = self.cached_pool(np.random.default_rng(12345))
        for p in (pool, twin):
            for _ in range(4):  # drain cluster 0
                p.get(0, fallback_order=np.array([0]))
        payloads = rng.integers(0, 256, (2, 16), dtype=np.uint8)
        # Sequential reference: release then pop, per request.
        twin.release(0, 0)
        seq0 = twin.get_best(
            0, lambda a: self.hamming(contents, a, payloads[0]), -1,
            fallback_order=np.array([0, 1, 2]),
        )
        twin.release(3, 0)
        seq1 = twin.get_best(
            0, lambda a: self.hamming(contents, a, payloads[1]), -1,
            fallback_order=np.array([0, 1, 2]),
        )
        got, fallback_used = pool.get_best_many(
            np.array([0, 0]), payloads, -1,
            fallback_orders=np.array([[0, 1, 2], [0, 1, 2]]),
            releases=[(0, 0), (3, 0)],
        )
        assert got.tolist() == [seq0, seq1]
        # The release lands before the empty-cluster check, like the
        # sequential delete-then-put interleaving.
        assert not fallback_used.any()
        assert pool._free_lists == twin._free_lists

    def test_release_fills_cache_row(self, rng):
        pool, contents = self.cached_pool(rng)
        addr = pool.get(2)
        contents[addr] ^= 0xFF  # the "device" wrote while it was live
        pool.release(addr, 1)
        addresses, rows = pool.cache_rows(1)
        position = addresses.tolist().index(addr)
        assert np.array_equal(rows[position], contents[addr])

    def test_exhaustion_reports_releases_applied(self, rng):
        pool, contents = self.cached_pool(rng, n_clusters=1, num_addresses=2)
        pool.get(0)
        pool.get(0)
        payloads = rng.integers(0, 256, (3, 16), dtype=np.uint8)
        with pytest.raises(PoolExhaustedError) as excinfo:
            pool.get_best_many(
                np.zeros(3, dtype=np.int64), payloads, -1,
                releases=[(0, 0), None, None],
            )
        # Request 0 popped the address its release recycled; request 1
        # had no release and died.
        assert excinfo.value.partial_addresses.tolist() == [0]
        assert excinfo.value.releases_applied == 2

    def test_payload_without_cache_rejected(self):
        pool = DynamicAddressPool(2, 8)
        pool.rebuild(np.zeros(8, dtype=np.int64), np.arange(8))
        with pytest.raises(ValueError, match="content cache"):
            pool.get_best(0, np.zeros(16, dtype=np.uint8), -1)

    def test_payload_width_mismatch_rejected(self, rng):
        pool, _ = self.cached_pool(rng)
        with pytest.raises(ValueError, match="width"):
            pool.get_best(0, np.zeros(7, dtype=np.uint8), -1)


class TestInvariantsProperty:
    @given(st.lists(st.sampled_from(["get", "release"]), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_no_double_allocation(self, ops):
        """Random op sequences never hand out an address twice without a
        release in between, and availability flags stay consistent."""
        rng = np.random.default_rng(0)
        pool = DynamicAddressPool(2, 8)
        pool.rebuild(rng.integers(0, 2, 8), np.arange(8))
        held: set[int] = set()
        for op in ops:
            if op == "get" and pool.total_free:
                addr = pool.get(int(rng.integers(0, 2)))
                assert addr not in held
                held.add(addr)
            elif op == "release" and held:
                addr = held.pop()
                pool.release(addr, int(rng.integers(0, 2)))
        assert pool.total_free + len(held) == 8

"""Tests for the dynamic address pool."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DynamicAddressPool
from repro.errors import PoolExhaustedError


@pytest.fixture
def pool() -> DynamicAddressPool:
    pool = DynamicAddressPool(n_clusters=3, num_addresses=12)
    labels = np.array([0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2])
    pool.rebuild(labels, np.arange(12))
    return pool


class TestRebuild:
    def test_cluster_sizes(self, pool):
        assert pool.cluster_sizes() == [4, 4, 4]
        assert pool.total_free == 12

    def test_partial_rebuild_leaves_rest_unavailable(self):
        pool = DynamicAddressPool(2, 10)
        pool.rebuild(np.array([0, 1]), np.array([3, 7]))
        assert pool.total_free == 2
        assert 3 in pool and 7 in pool
        assert 0 not in pool

    def test_label_out_of_range(self):
        pool = DynamicAddressPool(2, 4)
        with pytest.raises(ValueError, match="label out of cluster range"):
            pool.rebuild(np.array([5]), np.array([0]))

    def test_shape_mismatch(self):
        pool = DynamicAddressPool(2, 4)
        with pytest.raises(ValueError):
            pool.rebuild(np.array([0, 1]), np.array([0]))


class TestGetRelease:
    def test_get_from_cluster(self, pool):
        addr = pool.get(1)
        assert 4 <= addr <= 7
        assert addr not in pool
        assert pool.total_free == 11

    def test_get_falls_back_when_empty(self, pool):
        for _ in range(4):
            pool.get(0)
        addr = pool.get(0)  # cluster 0 empty; any other cluster serves
        assert addr >= 4

    def test_fallback_order_respected(self, pool):
        for _ in range(4):
            pool.get(0)
        addr = pool.get(0, fallback_order=np.array([0, 2, 1]))
        assert 8 <= addr <= 11  # cluster 2 preferred over 1

    def test_exhaustion_raises(self):
        pool = DynamicAddressPool(1, 2)
        pool.rebuild(np.zeros(2, dtype=np.int64), np.arange(2))
        pool.get(0)
        pool.get(0)
        with pytest.raises(PoolExhaustedError):
            pool.get(0)

    def test_release_recycles(self, pool):
        addr = pool.get(0)
        pool.release(addr, 2)
        assert pool.cluster_of(addr) == 2
        assert pool.total_free == 12

    def test_double_release_rejected(self, pool):
        addr = pool.get(0)
        pool.release(addr, 0)
        with pytest.raises(ValueError, match="already in the pool"):
            pool.release(addr, 0)

    def test_release_bad_ranges(self, pool):
        with pytest.raises(ValueError):
            pool.release(99, 0)
        addr = pool.get(0)
        with pytest.raises(ValueError):
            pool.release(addr, 9)

    def test_free_fraction(self, pool):
        pool.get(0)
        assert pool.free_fraction == pytest.approx(11 / 12)


class TestGetBest:
    def test_picks_minimum_score(self, pool):
        # Score = distance from address 6.
        scorer = lambda addrs: np.abs(addrs - 6)
        addr = pool.get_best(1, scorer, probe_limit=4)
        assert addr == 6

    def test_probe_limit_zero_is_fifo(self, pool):
        scorer = lambda addrs: -addrs  # would prefer the largest
        addr = pool.get_best(0, scorer, probe_limit=0)
        assert addr == 0  # FIFO ignores the scorer

    def test_probe_limit_bounds_scan(self, pool):
        seen = []

        def scorer(addrs):
            seen.extend(addrs.tolist())
            return np.zeros(len(addrs))

        pool.get_best(0, scorer, probe_limit=2)
        assert len(seen) == 2

    def test_negative_probe_scans_all(self, pool):
        scorer = lambda addrs: -addrs
        addr = pool.get_best(2, scorer, probe_limit=-1)
        assert addr == 11  # best (largest) of cluster 2

    def test_fallback_when_cluster_empty(self, pool):
        for _ in range(4):
            pool.get(2)
        addr = pool.get_best(
            2, lambda a: np.zeros(len(a)), probe_limit=8,
            fallback_order=np.array([2, 0, 1]),
        )
        assert 0 <= addr <= 3

    def test_exhaustion(self):
        pool = DynamicAddressPool(2, 2)
        pool.rebuild(np.array([0, 0]), np.arange(2))
        pool.get(0)
        pool.get(0)
        with pytest.raises(PoolExhaustedError):
            pool.get_best(0, lambda a: np.zeros(len(a)), probe_limit=4)


class TestInvariantsProperty:
    @given(st.lists(st.sampled_from(["get", "release"]), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_no_double_allocation(self, ops):
        """Random op sequences never hand out an address twice without a
        release in between, and availability flags stay consistent."""
        rng = np.random.default_rng(0)
        pool = DynamicAddressPool(2, 8)
        pool.rebuild(rng.integers(0, 2, 8), np.arange(8))
        held: set[int] = set()
        for op in ops:
            if op == "get" and pool.total_free:
                addr = pool.get(int(rng.integers(0, 2)))
                assert addr not in held
                held.add(addr)
            elif op == "release" and held:
                addr = held.pop()
                pool.release(addr, int(rng.integers(0, 2)))
        assert pool.total_free + len(held) == 8

"""Tests for the model manager (training lifecycle + prediction timing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PNWConfig
from repro.core import ModelManager
from repro.errors import NotFittedError
from tests.conftest import clustered_values


@pytest.fixture
def manager() -> ModelManager:
    config = PNWConfig(
        num_buckets=64, value_bytes=24, n_clusters=4, seed=3, n_init=1
    )
    return ModelManager(config)


class TestTraining:
    def test_untrained_state(self, manager):
        assert not manager.is_trained
        with pytest.raises(NotFittedError):
            manager.predict(np.zeros(32, dtype=np.uint8))
        with pytest.raises(NotFittedError):
            manager.labels_for(np.zeros((2, 32), dtype=np.uint8))

    def test_train_sets_model(self, manager, rng):
        rows = clustered_values(rng, 64, 32)
        manager.train(rows)
        assert manager.is_trained
        assert manager.model_version == 1
        assert manager.train_count == 1
        assert manager.last_train_seconds > 0

    def test_clusters_capped_by_samples(self, rng):
        config = PNWConfig(num_buckets=4, value_bytes=8, n_clusters=16, seed=0)
        manager = ModelManager(config)
        manager.train(rng.integers(0, 256, (3, 16), dtype=np.uint8))
        assert manager.model.n_clusters == 3

    def test_retrain_bumps_version(self, manager, rng):
        rows = clustered_values(rng, 64, 32)
        manager.train(rows)
        manager.train(rows)
        assert manager.model_version == 2


class TestPrediction:
    def test_predict_in_range(self, manager, rng):
        rows = clustered_values(rng, 64, 32)
        manager.train(rows)
        label = manager.predict(rows[0])
        assert 0 <= label < 4

    def test_same_template_same_cluster(self, manager, rng):
        rows = clustered_values(rng, 64, 32, flip_rate=0.0)
        manager.train(rows)
        # Rows identical bytes -> identical predictions.
        for row in rows[:8]:
            identical = np.flatnonzero((rows == row).all(axis=1))
            labels = {manager.predict(rows[i]) for i in identical}
            assert len(labels) == 1

    def test_prediction_latency_tracked(self, manager, rng):
        rows = clustered_values(rng, 64, 32)
        manager.train(rows)
        assert manager.mean_predict_ns == 0.0
        manager.predict(rows[0])
        assert manager.predict_count == 1
        assert manager.mean_predict_ns > 0

    def test_fallback_order_head_is_prediction(self, manager, rng):
        rows = clustered_values(rng, 64, 32)
        manager.train(rows)
        for row in rows[:5]:
            order = manager.fallback_order(row)
            assert order[0] == manager.predict(row)
            assert sorted(order.tolist()) == list(range(4))

    def test_predict_many_matches_single(self, manager, rng):
        rows = clustered_values(rng, 64, 32)
        manager.train(rows)
        labels = manager.predict_many(rows[:16])
        assert labels.tolist() == [manager.predict(row) for row in rows[:16]]

    def test_fallback_order_many_matches_single(self, manager, rng):
        rows = clustered_values(rng, 64, 32)
        manager.train(rows)
        orders = manager.fallback_order_many(rows[:16])
        assert orders.shape == (16, 4)
        for i in range(16):
            assert np.array_equal(orders[i], manager.fallback_order(rows[i]))

    def test_batch_prediction_counts_every_item(self, manager, rng):
        rows = clustered_values(rng, 64, 32)
        manager.train(rows)
        manager.predict_many(rows[:10])
        assert manager.predict_count == 10
        manager.fallback_order_many(rows[:5])
        assert manager.predict_count == 15
        assert manager.predict_ns_total > 0


class TestRetrainPolicy:
    def test_untrained_uses_auto_train_fraction(self, manager):
        assert not manager.should_retrain(0.05)
        assert manager.should_retrain(0.15)

    def test_trained_uses_load_factor(self, manager, rng):
        manager.train(clustered_values(rng, 64, 32))
        assert not manager.should_retrain(0.5)
        assert manager.should_retrain(0.95)

"""Shared fixtures for the PNW reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PNWConfig, PNWStore


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_config() -> PNWConfig:
    """A small but fully featured store configuration."""
    return PNWConfig(
        num_buckets=128,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=25,
    )


@pytest.fixture
def warm_store(small_config: PNWConfig, rng: np.random.Generator) -> PNWStore:
    """A store warmed with clusterable old data and a trained model."""
    templates = rng.integers(0, 256, size=(4, small_config.value_bytes), dtype=np.uint8)
    picks = rng.integers(0, 4, size=small_config.num_buckets)
    noise = (rng.random((small_config.num_buckets, small_config.value_bytes)) < 0.02)
    old = templates[picks] ^ noise.astype(np.uint8)
    store = PNWStore(small_config)
    store.warm_up(old)
    return store


def clustered_values(
    rng: np.random.Generator,
    n: int,
    width: int,
    n_classes: int = 4,
    flip_rate: float = 0.02,
) -> np.ndarray:
    """Byte rows drawn from a few templates with light bit noise."""
    templates = rng.integers(0, 256, size=(n_classes, width), dtype=np.uint8)
    picks = rng.integers(0, n_classes, size=n)
    noise_bits = (rng.random((n, width * 8)) < flip_rate).astype(np.uint8)
    noise = np.packbits(noise_bits, axis=1)
    return templates[picks] ^ noise

"""Every example script must run end to end (at reduced sizes)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    """Run an example in a subprocess and return its stdout."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "round-trip OK" in out
    assert "cells programmed" in out


def test_streaming_ingest():
    out = run_example(
        "streaming_ingest.py", "--events", "300", "--buckets", "512"
    )
    assert "coalesced batches" in out
    assert "cells programmed per PUT" in out


def test_cctv_recorder():
    out = run_example("cctv_recorder.py", "--frames", "60", "--buffer", "40")
    assert "PNW saves" in out
    assert "lifetime extension" in out


def test_kv_store_comparison():
    out = run_example("kv_store_comparison.py", "--items", "200")
    assert "PNW (Fig. 2a)" in out
    assert "NoveLSM" in out


def test_wear_leveling_report():
    out = run_example(
        "wear_leveling_report.py", "--buckets", "80", "--updates-per-bucket", "2"
    )
    assert "Fig. 12" in out and "Fig. 13" in out
    assert "p99" in out


@pytest.mark.slow
def test_workload_shift():
    out = run_example("workload_shift.py")
    assert "retrained" in out
    assert "phase 4" in out

"""Tests for the DRAM hash index and the NVM path-hashing index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, KeyNotFoundError
from repro.index import DRAMHashIndex, PathHashingIndex, stable_hash64


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64(b"hello") == stable_hash64(b"hello")

    def test_seed_gives_independent_functions(self):
        assert stable_hash64(b"hello", seed=1) != stable_hash64(b"hello", seed=2)

    def test_different_keys_differ(self):
        assert stable_hash64(b"a") != stable_hash64(b"b")

    def test_64_bit_range(self):
        for key in (b"", b"x", b"y" * 100):
            assert 0 <= stable_hash64(key) < 2**64


@pytest.fixture(params=["dram", "path"])
def index(request):
    if request.param == "dram":
        return DRAMHashIndex(key_bytes=8)
    return PathHashingIndex(key_bytes=8, levels_exponent=8, reserved_levels=4)


class TestIndexContract:
    """Behaviour both index placements must share."""

    def test_put_get(self, index):
        index.put(b"alpha", 42)
        assert index.get(b"alpha") == 42

    def test_update_existing(self, index):
        index.put(b"alpha", 1)
        index.put(b"alpha", 2)
        assert index.get(b"alpha") == 2
        assert len(index) == 1

    def test_missing_key_raises(self, index):
        with pytest.raises(KeyNotFoundError):
            index.get(b"ghost")
        with pytest.raises(KeyNotFoundError):
            index.delete(b"ghost")

    def test_delete_then_get_raises(self, index):
        index.put(b"alpha", 42)
        assert index.delete(b"alpha") == 42
        with pytest.raises(KeyNotFoundError):
            index.get(b"alpha")
        assert len(index) == 0

    def test_contains(self, index):
        assert b"k" not in index
        index.put(b"k", 5)
        assert b"k" in index

    def test_key_padding_is_canonical(self, index):
        index.put(b"ab", 7)
        assert index.get(b"ab\x00\x00\x00\x00\x00\x00") == 7

    def test_oversized_key_rejected(self, index):
        with pytest.raises(ValueError, match="exceeds"):
            index.put(b"123456789", 1)

    def test_many_keys(self, index):
        for i in range(100):
            index.put(f"k{i}".encode(), i)
        for i in range(100):
            assert index.get(f"k{i}".encode()) == i
        assert len(index) == 100

@pytest.mark.parametrize("make_index", [
    lambda: DRAMHashIndex(key_bytes=8),
    lambda: PathHashingIndex(key_bytes=8, levels_exponent=10, reserved_levels=4),
], ids=["dram", "path"])
@given(ops=st.lists(
    st.tuples(st.binary(min_size=1, max_size=8),
              st.integers(min_value=0, max_value=2**32)),
    max_size=40,
))
@settings(max_examples=25, deadline=None)
def test_model_based_against_dict(make_index, ops):
    """Both index placements behave exactly like a dict under put/get."""
    index = make_index()
    reference: dict[bytes, int] = {}
    for key, addr in ops:
        padded = key.ljust(8, b"\x00")
        index.put(key, addr)
        reference[padded] = addr
    assert len(index) == len(reference)
    for padded, addr in reference.items():
        assert index.get(padded) == addr


class TestPathHashingSpecifics:
    def test_delete_costs_one_bit(self):
        index = PathHashingIndex(key_bytes=8, levels_exponent=6)
        index.put(b"victim", 9)
        before = index.nvm.stats.total_bit_updates
        index.delete(b"victim")
        assert index.nvm.stats.total_bit_updates - before == 1

    def test_capacity_covers_all_levels(self):
        index = PathHashingIndex(key_bytes=8, levels_exponent=4, reserved_levels=3)
        assert index.capacity == 16 + 8 + 4

    def test_collisions_absorbed_by_lower_levels(self):
        # Tiny top level forces path descents.
        index = PathHashingIndex(key_bytes=8, levels_exponent=3, reserved_levels=4)
        inserted = 0
        try:
            for i in range(index.capacity):
                index.put(f"k{i}".encode(), i)
                inserted += 1
        except CapacityError:
            pass
        # A two-choice, multi-level scheme should pack well past the top level.
        assert inserted > 8
        for i in range(inserted):
            assert index.get(f"k{i}".encode()) == i

    def test_full_paths_raise_capacity_error(self):
        index = PathHashingIndex(key_bytes=8, levels_exponent=1, reserved_levels=1)
        with pytest.raises(CapacityError):
            for i in range(10):
                index.put(f"k{i}".encode(), i)

    def test_load_fraction(self):
        index = PathHashingIndex(key_bytes=8, levels_exponent=6)
        assert index.load == 0.0
        index.put(b"a", 1)
        assert index.load > 0.0

    def test_writes_are_accounted(self):
        index = PathHashingIndex(key_bytes=8, levels_exponent=6)
        index.put(b"a", 1)
        assert index.nvm.stats.total_writes == 1
        assert index.nvm.stats.total_bit_updates > 0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PathHashingIndex(key_bytes=8, levels_exponent=0)
        with pytest.raises(ValueError):
            PathHashingIndex(key_bytes=8, levels_exponent=4, reserved_levels=9)
        with pytest.raises(ValueError):
            PathHashingIndex(key_bytes=0)

    def test_reinsert_after_delete_reuses_slot(self):
        index = PathHashingIndex(key_bytes=8, levels_exponent=6)
        index.put(b"a", 1)
        index.delete(b"a")
        index.put(b"a", 2)
        assert index.get(b"a") == 2
        assert len(index) == 1


class TestDRAMHashSpecifics:
    def test_dram_traffic_accounted(self):
        from repro.nvm import DRAMRegion

        dram = DRAMRegion()
        index = DRAMHashIndex(key_bytes=8, dram=dram)
        index.put(b"a", 1)
        index.get(b"a")
        assert dram.write_ops == 1
        assert dram.read_ops == 1

    def test_items_iteration(self):
        index = DRAMHashIndex(key_bytes=8)
        index.put(b"a", 1)
        index.put(b"b", 2)
        assert dict(index.items()) == {
            b"a".ljust(8, b"\x00"): 1,
            b"b".ljust(8, b"\x00"): 2,
        }

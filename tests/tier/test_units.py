"""Unit tests for the tier's components in isolation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.reports import BUFFERED_ADDRESS, OperationReport
from repro.tier import BufferCache, TierStats, WriteBuffer


class TestBufferCache:
    def test_lru_eviction_order(self):
        cache = BufferCache(2)
        cache.fill(b"a", b"1")
        cache.fill(b"b", b"2")
        assert cache.lookup(b"a") == b"1"  # refreshes a
        cache.fill(b"c", b"3")  # evicts b (LRU)
        assert b"b" not in cache
        assert cache.lookup(b"b") is None
        assert cache.lookup(b"a") == b"1"
        assert cache.lookup(b"c") == b"3"
        assert cache.stats.cache_evictions == 1

    def test_hit_miss_accounting(self):
        cache = BufferCache(4)
        assert cache.lookup(b"x") is None
        cache.fill(b"x", b"v")
        assert cache.lookup(b"x") == b"v"
        assert cache.stats.cache_hits == 1
        assert cache.stats.cache_misses == 1
        assert cache.stats.cache_hit_rate == 0.5

    def test_invalidate_counts_only_real_drops(self):
        cache = BufferCache(4)
        cache.fill(b"x", b"v")
        cache.invalidate(b"x")
        cache.invalidate(b"x")  # already gone: not counted
        assert cache.stats.cache_invalidations == 1
        assert cache.lookup(b"x") is None

    def test_zero_capacity_disables(self):
        cache = BufferCache(0)
        cache.fill(b"x", b"v")
        assert len(cache) == 0
        assert cache.lookup(b"x") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            BufferCache(-1)

    def test_refill_refreshes_without_evicting(self):
        cache = BufferCache(2)
        cache.fill(b"a", b"1")
        cache.fill(b"b", b"2")
        cache.fill(b"a", b"1'")  # refresh, not a new entry
        assert len(cache) == 2
        assert cache.stats.cache_evictions == 0
        assert cache.lookup(b"a") == b"1'"


class TestWriteBuffer:
    def test_stage_then_coalesce(self):
        buffer = WriteBuffer(4)
        assert buffer.stage(b"k", b"v1", is_create=True, seq=1) is False
        assert buffer.stage(b"k", b"v2", is_create=True, seq=1) is True
        entry = buffer.entry(b"k")
        assert entry.value == b"v2"
        assert entry.rewrites == 1
        assert entry.seq == 1  # age anchored at first staging
        assert buffer.stats.staged == 1
        assert buffer.stats.coalesced == 1
        assert len(buffer) == 1

    def test_creates_tracking_through_drop_and_clear(self):
        buffer = WriteBuffer(4)
        buffer.stage(b"a", b"1", is_create=True, seq=1)
        buffer.stage(b"b", b"2", is_create=False, seq=2)
        assert buffer.creates == 1
        buffer.drop(b"a")
        assert buffer.creates == 0
        buffer.stage(b"c", b"3", is_create=True, seq=3)
        assert buffer.clear() == 2
        assert buffer.creates == 0
        assert len(buffer) == 0

    def test_take_all_preserves_staging_order(self):
        buffer = WriteBuffer(8)
        for i in range(4):
            buffer.stage(f"k{i}".encode(), b"v", is_create=True, seq=i)
        taken = buffer.take_all()
        assert [key for key, _ in taken] == [b"k0", b"k1", b"k2", b"k3"]
        assert len(buffer) == 0 and buffer.creates == 0

    def test_restage_keeps_entries_without_recounting(self):
        buffer = WriteBuffer(8)
        buffer.stage(b"a", b"1", is_create=True, seq=1)
        staged_before = buffer.stats.staged
        buffer.restage(buffer.take_all())
        assert b"a" in buffer
        assert buffer.creates == 1
        assert buffer.stats.staged == staged_before

    def test_full_and_oldest_seq(self):
        buffer = WriteBuffer(2)
        assert buffer.oldest_seq() is None
        buffer.stage(b"a", b"1", is_create=True, seq=5)
        buffer.stage(b"b", b"2", is_create=True, seq=9)
        assert buffer.oldest_seq() == 5
        assert buffer.full()
        buffer.drop(b"a")
        assert buffer.oldest_seq() == 9
        assert not buffer.full()

    def test_peek_counts_writeback_hits(self):
        buffer = WriteBuffer(2)
        buffer.stage(b"a", b"1", is_create=True, seq=1)
        assert buffer.peek(b"a").value == b"1"
        assert buffer.peek(b"missing") is None
        assert buffer.stats.writeback_hits == 1

    def test_capacity_floor(self):
        with pytest.raises(ValueError, match="capacity"):
            WriteBuffer(0)


class TestTierStats:
    def test_merge_sums_every_field(self):
        a = TierStats(cache_hits=1, staged=2, flushed=3)
        b = TierStats(cache_hits=4, coalesced=5, unflushed_lost=6)
        merged = TierStats.merge([a, b])
        assert merged.cache_hits == 5
        assert merged.staged == 2
        assert merged.coalesced == 5
        assert merged.flushed == 3
        assert merged.unflushed_lost == 6

    def test_merge_is_field_generic(self):
        # Adding a counter field must not require touching merge():
        # every int field participates.
        ones = TierStats(**{
            f.name: 1 for f in dataclasses.fields(TierStats)
        })
        merged = TierStats.merge([ones, ones, ones])
        for f in dataclasses.fields(TierStats):
            assert getattr(merged, f.name) == 3, f.name

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            TierStats.merge([])

    def test_as_dict_round_trip(self):
        stats = TierStats(cache_hits=2, flush_events=1)
        as_dict = stats.as_dict()
        assert as_dict["cache_hits"] == 2
        assert set(as_dict) == {
            f.name for f in dataclasses.fields(TierStats)
        }

    def test_hit_rate_and_absorbed(self):
        stats = TierStats(cache_hits=3, cache_misses=1,
                          staged=10, coalesced=5, flushed=8)
        assert stats.cache_hit_rate == 0.75
        assert stats.absorbed == 7
        assert TierStats().cache_hit_rate == 0.0


class TestBufferedReports:
    def test_make_buffered_is_zero_cost(self):
        report = OperationReport.make_buffered("put", b"k")
        assert report.buffered
        assert report.address == BUFFERED_ADDRESS
        assert report.bit_updates == 0
        assert report.words_touched == 0
        assert report.nvm_latency_ns == 0.0
        assert report.total_latency_ns == 0.0
        assert not report.retrained

    def test_real_reports_are_not_buffered(self):
        report = OperationReport(
            op="put", key=b"k", address=3, cluster=0, fallback_used=False,
            bit_updates=1, words_touched=1, lines_touched=1,
            nvm_latency_ns=1.0, predict_ns=0.0, index_lines=0,
            retrained=False,
        )
        assert not report.buffered

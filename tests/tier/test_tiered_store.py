"""TieredStore semantics: routing, equivalence, errors, composition.

The equivalence tests run against all three store backends (single
zone, sharded threads, sharded processes) because the tier promises the
same logical contents no matter what it wraps.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import IngestQueue, PNWConfig, TieredStore, make_store
from repro.errors import ConfigError, DuplicateKeyError, KeyNotFoundError
from repro.shard import ShardedPNWStore
from repro.workloads import ZipfianKVWorkload
from tests.conftest import clustered_values

BACKENDS = ["single", "threads", "processes"]


def make_config(**overrides) -> PNWConfig:
    base = dict(
        num_buckets=192,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        tier_mode="write_back",
        tier_cache_entries=32,
        tier_writeback_entries=24,
        tier_flush_ops=512,
    )
    base.update(overrides)
    return PNWConfig(**base)


def make_tiered(backend: str, **overrides) -> TieredStore:
    if backend == "single":
        config = make_config(**overrides)
    else:
        executor = "thread" if backend == "threads" else "process"
        config = make_config(shards=3, executor=executor, **overrides)
    store = make_store(config)
    assert isinstance(store, TieredStore)
    return store


def warmed(backend: str, **overrides) -> TieredStore:
    store = make_tiered(backend, **overrides)
    rng = np.random.default_rng(42)
    store.warm_up(
        clustered_values(rng, store.config.num_buckets, store.config.value_bytes)
    )
    return store


def drive_zipfian(store, n_ops: int, seed: int = 3) -> dict[bytes, bytes]:
    workload = ZipfianKVWorkload(seed=seed, n_keys=48)
    oracle: dict[bytes, bytes] = {}
    for chunk in workload.batches(n_ops, 16):
        pairs = workload.pairs(chunk)
        store.put_many(pairs)
        oracle.update(pairs)
    return oracle


@pytest.mark.parametrize("backend", BACKENDS)
class TestEquivalenceAcrossBackends:
    def test_write_back_round_trips_and_drains(self, backend):
        store = warmed(backend)
        try:
            oracle = drive_zipfian(store, 200)
            # Read-your-write while entries are still dirty...
            for key, value in list(oracle.items())[:10]:
                assert store.get(key) == value.ljust(24, b"\x00")
            assert len(store) == len(oracle)
            store.flush()
            assert store.dirty_entries == 0
            # ...and after the drain, now from the durable store.
            for key, value in oracle.items():
                assert store.get(key) == value.ljust(24, b"\x00")
                assert key in store
            assert len(store.store) == len(oracle)
        finally:
            store.close()

    def test_coalescing_saves_nvm_writes(self, backend):
        store = warmed(backend)
        try:
            drive_zipfian(store, 200)
            store.flush()
            stats = store.tier_stats
            assert stats.coalesced > 0
            # NVM saw strictly fewer bucket writes than ops issued.
            assert stats.flushed + stats.write_through < 200
            assert stats.flushed == stats.staged  # all drained
        finally:
            store.close()

    def test_close_flushes_everything(self, backend):
        store = warmed(backend)
        store.put(b"durable", b"payload")
        assert store.dirty_entries == 1
        store.close()
        assert store.dirty_entries == 0
        assert store.tier_stats.flushed == 1


class TestModes:
    def test_write_through_state_is_byte_identical(self):
        bare = make_store(make_config(tier_mode="off"))
        tiered = warmed("single", tier_mode="write_through")
        rng = np.random.default_rng(42)
        bare.warm_up(clustered_values(rng, 192, 24))
        oracle_bare = drive_zipfian(bare, 150)
        oracle_tier = drive_zipfian(tiered, 150)
        assert oracle_bare == oracle_tier
        assert np.array_equal(
            bare.nvm.snapshot(), tiered.store.nvm.snapshot()
        )
        assert tiered.dirty_entries == 0
        assert tiered.tier_stats.staged == 0

    def test_write_through_reports_match_bare_store(self):
        bare = make_store(make_config(tier_mode="off"))
        tiered = warmed("single", tier_mode="write_through")
        rng = np.random.default_rng(42)
        bare.warm_up(clustered_values(rng, 192, 24))
        bare_reports = bare.put_many([(b"a", b"1"), (b"b", b"2")])
        tier_reports = tiered.put_many([(b"a", b"1"), (b"b", b"2")])
        # predict_ns is measured wall time; everything else must match.
        assert [
            dataclasses.replace(r, predict_ns=0.0) for r in tier_reports
        ] == [dataclasses.replace(r, predict_ns=0.0) for r in bare_reports]
        assert not any(r.buffered for r in tier_reports)

    def test_write_back_reports_are_buffered_sentinels(self):
        store = warmed("single")
        try:
            report = store.put(b"k", b"v")
            assert report.buffered
            assert report.bit_updates == 0
            assert report.op == "put"
            assert report.key == b"k".ljust(8, b"\x00")
        finally:
            store.close()

    def test_predictive_routes_cold_through_hot_back(self):
        store = warmed("single", tier_mode="predictive")
        try:
            # First sight of a key: no recency, untrained model -> long.
            store.put(b"cold", b"v1")
            assert store.dirty_entries == 0
            stats = store.tier_stats
            assert stats.predicted_long == 1
            # Rewrite within the recency window -> short -> staged.
            store.put(b"cold", b"v2")
            assert store.dirty_entries == 1
            assert store.tier_stats.predicted_short == 1
            assert store.get(b"cold") == b"v2".ljust(24, b"\x00")
        finally:
            store.close()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError, match="tier_mode"):
            make_config(tier_mode="sideways")
        store = make_store(make_config(tier_mode="off"))
        with pytest.raises(ConfigError, match="tier mode"):
            TieredStore(store, mode="sideways")


class TestErrorSemantics:
    def test_update_missing_key_raises_with_prefix(self):
        store = warmed("single")
        try:
            store.put(b"have", b"v")
            with pytest.raises(KeyNotFoundError, match="not found") as info:
                store.update_many([(b"have", b"v2"), (b"nope", b"x")])
            committed = info.value.committed_reports
            assert len(committed) == 1
            assert committed[0].key == b"have".ljust(8, b"\x00")
            # The prefix applied: the rewrite coalesced into the entry.
            assert store.get(b"have") == b"v2".ljust(24, b"\x00")
        finally:
            store.close()

    def test_update_of_staged_create_succeeds(self):
        store = warmed("single")
        try:
            store.put(b"fresh", b"v1")  # staged create, not yet durable
            report = store.update(b"fresh", b"v2")
            assert report.buffered
            assert store.get(b"fresh") == b"v2".ljust(24, b"\x00")
        finally:
            store.close()

    def test_put_unique_sees_staged_creates(self):
        store = warmed("single")
        try:
            store.put(b"dup", b"v")
            assert store.dirty_entries == 1  # never flushed
            with pytest.raises(DuplicateKeyError, match="already exists"):
                store.put_unique(b"dup", b"v2")
        finally:
            store.close()

    def test_delete_of_staged_create_never_touches_store(self):
        store = warmed("single")
        try:
            before = store.metrics.deletes
            store.put(b"ghost", b"v")
            report = store.delete(b"ghost")
            assert report.buffered
            assert b"ghost" not in store
            assert b"ghost".ljust(8, b"\x00") not in store.store
            assert store.metrics.deletes == before  # absorbed in DRAM
            with pytest.raises(KeyNotFoundError):
                store.get(b"ghost")
        finally:
            store.close()

    def test_delete_of_staged_update_reaches_store(self):
        store = warmed("single")
        try:
            store.put(b"k", b"v1")
            store.flush()  # durable now
            store.put(b"k", b"v2")  # staged update
            report = store.delete(b"k")
            assert not report.buffered  # the durable version was deleted
            assert b"k" not in store
        finally:
            store.close()

    def test_duplicate_key_in_one_predictive_batch_then_delete(self):
        # Same key twice in one batch: the cold first op passes through,
        # the rewrite goes write-back.  The staged entry must see the
        # flushed first version (is_create=False) or a later DELETE
        # cancels only the DRAM entry and resurrects the durable value.
        store = warmed("single", tier_mode="predictive")
        try:
            reports = store.put_many([(b"dup", b"v1"), (b"dup", b"v2")])
            assert not reports[0].buffered  # cold key passed through
            assert reports[1].buffered  # recency rewrite absorbed
            assert store.dirty_entries == 1
            assert len(store) == len(store.store)  # no phantom create
            assert store.get(b"dup") == b"v2".ljust(24, b"\x00")
            report = store.delete(b"dup")
            assert not report.buffered  # the durable version was deleted
            assert b"dup" not in store
            assert b"dup".ljust(8, b"\x00") not in store.store
            with pytest.raises(KeyNotFoundError):
                store.get(b"dup")
        finally:
            store.close()

    def test_delete_missing_key_raises(self):
        store = warmed("single")
        try:
            with pytest.raises(KeyNotFoundError, match="not found"):
                store.delete(b"never")
        finally:
            store.close()

    def test_mid_batch_flush_failure_reports_applied_prefix(self):
        # A flush trigger firing mid-batch must not swallow the reports
        # of ops already applied in this call: committed_reports keeps
        # the call's partial-commit contract, flush_committed_reports
        # carries the store-level flush view.
        store = warmed("single", tier_writeback_entries=4)
        original = store.store.put_many
        try:

            def boom(batch):
                raise RuntimeError("pool exhausted")

            store.store.put_many = boom
            with pytest.raises(RuntimeError, match="pool exhausted") as info:
                store.put_many([(b"k%d" % i, b"v") for i in range(5)])
            committed = info.value.committed_reports
            assert len(committed) == 4  # the staged prefix of this call
            assert all(report.buffered for report in committed)
            assert store.dirty_entries == 4  # failed flush restaged all
        finally:
            store.store.put_many = original
            store.close()

    def test_oversized_value_rejected_before_any_mutation(self):
        store = warmed("single")
        try:
            with pytest.raises(ValueError, match="exceeds bucket size"):
                store.put_many([(b"ok", b"v"), (b"big", b"x" * 25)])
            assert store.dirty_entries == 0
            assert b"ok" not in store
        finally:
            store.close()


class TestFlushTriggers:
    def test_size_trigger_fires_at_buffer_capacity(self):
        store = warmed("single", tier_writeback_entries=8)
        try:
            for i in range(7):
                store.put(f"k{i}".encode(), b"v")
            assert store.tier_stats.flush_events == 0
            store.put(b"k7", b"v")  # 8th distinct dirty key
            assert store.tier_stats.flush_events >= 1
            assert store.dirty_entries == 0
        finally:
            store.close()

    def test_interval_trigger_flushes_aged_entries(self):
        store = warmed("single", tier_writeback_entries=64,
                       tier_flush_ops=10)
        try:
            store.put(b"old", b"v")
            # Age it with passthrough-free rewrites of other keys.
            for i in range(12):
                store.put(f"other{i % 3}".encode(), b"v")
            assert b"old".ljust(8, b"\x00") in store.store
        finally:
            store.close()

    def test_flush_returns_entry_count(self):
        store = warmed("single", tier_writeback_entries=64)
        try:
            store.put(b"a", b"1")
            store.put(b"b", b"2")
            assert store.flush() == 2
            assert store.flush() == 0
        finally:
            store.close()


class TestReadCache:
    def test_repeat_gets_hit_dram(self):
        store = warmed("single")
        try:
            store.put(b"k", b"v")
            store.flush()
            store.get(b"k")  # miss -> fill
            store.get(b"k")  # hit
            stats = store.tier_stats
            assert stats.cache_hits == 1
            assert stats.cache_misses == 1
        finally:
            store.close()

    def test_mutation_invalidates_cached_value(self):
        store = warmed("single")
        try:
            store.put(b"k", b"v1")
            store.flush()
            store.get(b"k")
            store.put(b"k", b"v2")
            assert store.get(b"k") == b"v2".ljust(24, b"\x00")
        finally:
            store.close()


@pytest.mark.parametrize("backend", BACKENDS)
class TestIngestComposition:
    def test_queue_drains_through_the_tier(self, backend):
        store = warmed(backend)
        assert store.n_shards == (1 if backend == "single" else 3)
        with IngestQueue(store, max_batch=16, max_delay=60.0) as queue:
            futures = [
                queue.put(f"q{i}".encode(), f"v{i}".encode())
                for i in range(40)
            ]
            queue.flush()
            reports = [f.result() for f in futures]
            assert all(r.op == "put" for r in reports)
            # Read-your-write through the queue's GET path sees staged
            # values without any tier flush.
            assert queue.get(b"q0") == b"v0".ljust(24, b"\x00")
        store.flush()
        assert len(store.store) >= 40  # drained before shutdown
        store.close()

"""Crash semantics of the DRAM tier and merge/recovery accounting.

The tier's contract: a crash loses *exactly* the unflushed write-back
entries (counted in ``TierStats.unflushed_lost``); write-through ops and
flushed entries are exactly as durable as on the bare store; merged
per-shard accounting (``StoreMetrics.merge`` / ``WearStats.merge``)
stays consistent through a crash that lands between a write-back flush
and the next — nothing is double-counted by recovery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import StoreMetrics, TieredStore, WearStats, make_store
from repro.errors import KeyNotFoundError
from tests.tier.test_tiered_store import (
    BACKENDS,
    drive_zipfian,
    make_config,
    warmed,
)


@pytest.mark.parametrize("backend", BACKENDS)
class TestCrashRecover:
    def test_crash_loses_exactly_the_dirty_entries(self, backend):
        store = warmed(backend)
        try:
            oracle = drive_zipfian(store, 120)
            dirty = store.dirty_entries
            durable = len(store.store)
            assert dirty > 0  # the scenario must actually stage data
            store.crash()
            assert store.tier_stats.unflushed_lost == dirty
            assert store.dirty_entries == 0
            store.recover()
            # Exactly the durable keys survive; staged-only creates are
            # the counted loss.
            assert len(store) == durable
            assert len(oracle) - durable <= dirty
        finally:
            store.close()

    def test_flushed_entries_survive_the_crash(self, backend):
        store = warmed(backend)
        try:
            store.put(b"keep", b"payload")
            store.flush()
            store.put(b"lose", b"volatile")  # staged, never flushed
            store.crash()
            store.recover()
            assert store.get(b"keep") == b"payload".ljust(24, b"\x00")
            with pytest.raises(KeyNotFoundError):
                store.get(b"lose")
            assert store.tier_stats.unflushed_lost == 1
        finally:
            store.close()

    def test_clean_close_loses_nothing(self, backend):
        store = warmed(backend)
        oracle = drive_zipfian(store, 120)
        store.close()  # deterministic flush
        assert store.tier_stats.unflushed_lost == 0
        # Reopen the same NVM view: everything admitted is durable.
        assert store.tier_stats.flushed + store.tier_stats.write_through >= len(oracle)


class TestWriteThroughDurability:
    def test_write_through_is_as_durable_as_the_bare_store(self):
        bare = make_store(make_config(tier_mode="off"))
        tiered = warmed("single", tier_mode="write_through")
        rng = np.random.default_rng(42)
        bare.warm_up(
            np.asarray(rng.integers(0, 256, (192, 24)), dtype=np.uint8)
        )
        for target in (bare, tiered):
            target.put_many([(f"k{i}".encode(), b"v") for i in range(20)])
        for target in (bare, tiered):
            target.crash()
            target.recover()
        assert len(tiered) == len(bare) == 20
        assert tiered.tier_stats.unflushed_lost == 0


class TestMergeAccountingThroughRecovery:
    """The satellite: merged per-shard stats vs a mid-crash flush.

    A write-back flush programs NVM cells on several shards; the crash
    lands *after* that flush with more entries dirty.  Recovery rebuilds
    DRAM from NVM — it must not re-program (or re-count) the flushed
    cells, and the merged views must equal the per-shard sums exactly.
    """

    def _driven_sharded_tier(self) -> TieredStore:
        store = warmed("threads", tier_writeback_entries=12)
        drive_zipfian(store, 150)  # forces several pressure flushes
        assert store.tier_stats.flush_events > 0
        assert store.dirty_entries > 0  # crash will land mid-window
        return store

    def test_wear_merge_matches_per_shard_sums_across_crash(self):
        store = self._driven_sharded_tier()
        try:
            shards = store.store.stores
            parts = [shard.nvm.stats for shard in shards]
            merged_before = WearStats.merge(parts)
            assert (
                merged_before.total_bit_updates
                == store.wear_stats().total_bit_updates
                == sum(part.total_bit_updates for part in parts)
            )
            cells_before = merged_before.total_bit_updates
            writes_before = merged_before.total_writes
            store.crash()
            store.recover()
            # Recovery rebuilds DRAM only: the flushed cells are counted
            # once, not re-programmed.
            merged_after = store.wear_stats()
            assert merged_after.total_bit_updates == cells_before
            assert merged_after.total_writes == writes_before
        finally:
            store.close()

    def test_store_metrics_merge_counts_flushed_ops_once(self):
        store = self._driven_sharded_tier()
        try:
            flushed = store.tier_stats.flushed
            write_through = store.tier_stats.write_through
            parts = [shard.metrics for shard in store.store.stores]
            merged = StoreMetrics.merge(parts)
            # The NVM-side put count is exactly the flush+through
            # traffic: absorbed (coalesced/dirty) ops never reached a
            # shard, and nothing was counted twice.
            assert merged.puts == store.metrics.puts
            assert merged.puts == flushed + write_through
            store.crash()
            store.recover()
            merged_recovered = StoreMetrics.merge(
                [shard.metrics for shard in store.store.stores]
            )
            # Recovery retrains but must not replay operations.
            assert merged_recovered.puts == merged.puts
            assert merged_recovered.deletes == merged.deletes
        finally:
            store.close()

"""SharedZone / SharedWearStats: the shared-memory arena under
process-mode shards.

Pins the properties the process executor's crash story rests on: region
layout (alignment, no overlap), attach-never-zeroes, cross-mapping
visibility of both data bytes and wear counters, descriptor-backed
scalar totals behaving exactly like the base class's plain attributes,
and detach/close/unlink hygiene.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nvm import SharedWearStats, SharedZone, ZoneLayout
from repro.nvm.device import SimulatedNVM
from repro.nvm.stats import WearStats


@pytest.fixture
def zone():
    layout = ZoneLayout(num_buckets=70, bucket_bytes=16)
    zone = SharedZone.create(layout)
    yield zone
    zone.close()
    zone.unlink()


class TestZoneLayout:
    def test_regions_are_aligned_and_disjoint(self):
        layout = ZoneLayout(num_buckets=70, bucket_bytes=16,
                            track_bit_wear=True)
        regions = sorted(layout.regions().values())
        for (offset, shape, dtype), nxt in zip(regions, regions[1:]):
            assert offset % 64 == 0
            assert offset + int(np.prod(shape)) * dtype.itemsize <= nxt[0]
        assert layout.total_bytes >= regions[-1][0]

    def test_flag_words_round_up(self):
        assert ZoneLayout(32, 8).flag_words == 1
        assert ZoneLayout(33, 8).flag_words == 2
        assert ZoneLayout(70, 8).flag_words == 3

    def test_bit_wear_region_is_optional(self):
        assert "data_bit_wear" not in ZoneLayout(8, 4).regions()
        spec = ZoneLayout(8, 4, track_bit_wear=True).regions()["data_bit_wear"]
        assert spec[1] == (8, 32)

    def test_layout_is_picklable(self):
        import pickle

        layout = ZoneLayout(num_buckets=10, bucket_bytes=4)
        assert pickle.loads(pickle.dumps(layout)) == layout


class TestSharedZone:
    def test_fresh_segment_is_zeroed(self, zone):
        for name in zone.layout.regions():
            assert not zone.view(name).any()

    def test_attach_sees_writes_and_never_zeroes(self, zone):
        zone.view("data")[3, :] = 0xAB
        zone.view("flags")[1, 0] = 0x7F
        zone.view("data_int_totals")[0] = 42
        other = SharedZone.attach(zone.layout, zone.name)
        try:
            assert (other.view("data")[3] == 0xAB).all()
            assert other.view("flags")[1, 0] == 0x7F
            assert other.data_stats().total_writes == 42
            other.view("data")[5, :] = 0xCD
            assert (zone.view("data")[5] == 0xCD).all()
        finally:
            other.close()

    def test_device_over_zone_accounts_into_shared_slots(self, zone):
        nvm = SimulatedNVM(
            zone.layout.num_buckets, zone.layout.bucket_bytes,
            data=zone.view("data"), stats=zone.data_stats(),
        )
        row = np.full(zone.layout.bucket_bytes, 0xFF, dtype=np.uint8)
        nvm.write(3, row)
        # The write landed in the shared buffers, visible to a second
        # mapping with no copies.
        other = SharedZone.attach(zone.layout, zone.name)
        stats = other.data_stats()
        try:
            assert (other.view("data")[3] == row).all()
            assert stats.total_writes == 1
            assert stats.writes_per_address[3] == 1
            assert stats.total_bit_updates == nvm.stats.total_bit_updates
        finally:
            # Drop the stats views' buffer exports before the mapping goes.
            stats.detach()
            other.close()


class TestMediaRegions:
    def test_retired_region_is_always_present(self):
        layout = ZoneLayout(num_buckets=70, bucket_bytes=16)
        spec = layout.regions()["retired"]
        assert spec[1] == (layout.retired_bytes,)
        assert layout.retired_bytes == 9  # ceil(70 / 8)

    def test_stuck_region_is_gated_on_media_stuck(self):
        plain = ZoneLayout(num_buckets=16, bucket_bytes=8)
        assert "stuck" not in plain.regions()
        media = ZoneLayout(num_buckets=16, bucket_bytes=8, media_stuck=True)
        assert media.regions()["stuck"][1] == (16, 8)
        media_zone = SharedZone.create(media)
        try:
            assert media_zone.has_region("stuck")
            assert not media_zone.view("stuck").any()
        finally:
            media_zone.close()
            media_zone.unlink()

    def test_retirement_bitmap_survives_reattach(self, zone):
        from repro.core.media import BadRowDirectory

        directory = BadRowDirectory(
            zone.layout.num_buckets, bitmap=zone.view("retired")
        )
        for address in (0, 13, 42, 69):
            assert directory.retire(address)
        other = SharedZone.attach(zone.layout, zone.name)
        try:
            # A second mapping — the respawned worker's view — sees the
            # identical condemnation set without any handshake.
            mirrored = BadRowDirectory(
                zone.layout.num_buckets, bitmap=other.view("retired")
            )
            assert mirrored.count == 4
            assert list(mirrored.retired_addresses()) == [0, 13, 42, 69]
            # And retirements flow the other way too.
            mirrored.retire(7)
            assert directory.is_retired(7)
        finally:
            del mirrored  # drop the exported bitmap view first
            other.close()

    def test_stuck_mask_round_trips_through_the_zone(self):
        layout = ZoneLayout(num_buckets=16, bucket_bytes=8, media_stuck=True)
        zone = SharedZone.create(layout)
        try:
            from repro.nvm import FaultModel

            model = FaultModel(
                16, 8, fault_rate=0.2, fault_budget=0, seed=5,
                stuck=zone.view("stuck"),
            )
            old = np.zeros(8, dtype=np.uint8)
            new = np.full(8, 0xFF, dtype=np.uint8)
            model.filter(3, old, new.copy())
            assert model.stuck_events > 0
            other = SharedZone.attach(layout, zone.name)
            try:
                # A re-drawn model over the re-attached mask honours the
                # previous life's frozen cells: they are not pending.
                reborn = FaultModel(
                    16, 8, fault_rate=0.2, fault_budget=0, seed=5,
                    stuck=other.view("stuck"),
                )
                assert np.array_equal(reborn.stuck, model.stuck)
                assert reborn.pending_cells == (
                    model.n_faulty - model.stuck_events
                )
            finally:
                del reborn  # drop the exported stuck view first
                other.close()
        finally:
            del model
            zone.close()
            zone.unlink()


class TestSharedWearStats:
    def test_matches_private_stats_record_for_record(self, zone):
        shared = zone.data_stats()
        private = WearStats(zone.layout.num_buckets, zone.layout.bucket_bytes)
        for stats in (shared, private):
            stats.record_write(2, 9, 1, 3, 1, 120.0)
            stats.record_write_many(
                np.array([0, 2, 5]), np.array([4, 4, 4]),
                np.array([1, 1, 1]), np.array([1, 1, 1]),
                [100.0, 100.0, 100.0],
            )
            stats.record_read(55.0)
        assert shared.summary() == private.summary()
        assert np.array_equal(shared.writes_per_address,
                              private.writes_per_address)

    def test_scalar_slots_back_the_named_totals(self, zone):
        stats = zone.data_stats()
        stats.total_writes = 7
        stats.total_write_latency_ns = 1.5
        assert zone.view("data_int_totals")[0] == 7
        assert zone.view("data_float_totals")[0] == 1.5
        assert stats.total_writes == 7
        assert isinstance(stats.total_writes, int)

    def test_shape_validation(self, zone):
        with pytest.raises(ValueError, match="writes_per_address"):
            SharedWearStats(
                5, 16,
                writes_per_address=zone.view("data_writes"),
                int_totals=zone.view("data_int_totals"),
                float_totals=zone.view("data_float_totals"),
            )
        with pytest.raises(ValueError, match="int_totals"):
            SharedWearStats(
                zone.layout.num_buckets, 16,
                writes_per_address=zone.view("data_writes"),
                int_totals=zone.view("data_int_totals")[:2],
                float_totals=zone.view("data_float_totals"),
            )

    def test_merges_with_private_parts(self, zone):
        shared = zone.data_stats()
        shared.record_write(1, 3, 0, 1, 1, 10.0)
        private = WearStats(4, zone.layout.bucket_bytes)
        private.record_write(0, 5, 0, 1, 1, 20.0)
        merged = WearStats.merge([shared, private])
        assert merged.total_writes == 2
        assert merged.num_buckets == zone.layout.num_buckets + 4
        assert merged.writes_per_address[1] == 1
        assert merged.writes_per_address[zone.layout.num_buckets] == 1

    def test_detach_keeps_values_and_releases_the_segment(self):
        layout = ZoneLayout(num_buckets=16, bucket_bytes=8)
        zone = SharedZone.create(layout)
        stats = zone.data_stats()
        stats.record_write(4, 6, 0, 1, 1, 30.0)
        stats.detach()
        zone.close()
        zone.unlink()
        # The detached copy still reads the final counters...
        assert stats.total_writes == 1
        assert stats.writes_per_address[4] == 1
        # ...and writes now go to private memory, not a dead mapping.
        stats.record_read(10.0)
        assert stats.total_reads == 1

    def test_flag_stats_cover_the_bitmap_device(self, zone):
        stats = zone.flag_stats()
        assert stats.num_buckets == zone.layout.flag_words
        assert stats.bucket_bytes == 4
        stats.record_write(0, 1, 0, 1, 1, 5.0)
        assert zone.view("flag_int_totals")[0] == 1

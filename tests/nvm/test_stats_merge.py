"""WearStats.merge: cross-device aggregation for the sharded store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nvm.stats import WearStats, cdf_of_counts


def stats_with_writes(
    num_buckets: int,
    writes: list[tuple[int, int]],
    *,
    bucket_bytes: int = 4,
    track_bit_wear: bool = False,
) -> WearStats:
    """A WearStats fed ``(address, bit_updates)`` write records."""
    stats = WearStats(num_buckets, bucket_bytes, track_bit_wear)
    for address, bit_updates in writes:
        bits = None
        if track_bit_wear:
            bits = np.zeros(bucket_bytes * 8, dtype=np.uint8)
            bits[:bit_updates] = 1
        stats.record_write(address, bit_updates, 1, 2, 3, 100.0, bits)
    return stats


class TestWearStatsMerge:
    def test_totals_are_sums(self):
        a = stats_with_writes(4, [(0, 5), (1, 7)])
        b = stats_with_writes(8, [(2, 3)])
        a.record_read(50.0)
        merged = WearStats.merge([a, b])
        assert merged.total_writes == 3
        assert merged.total_reads == 1
        assert merged.total_bit_updates == 15
        assert merged.total_aux_bit_updates == 3
        assert merged.total_words_touched == 6
        assert merged.total_lines_touched == 9
        assert merged.total_write_latency_ns == pytest.approx(300.0)
        assert merged.total_read_latency_ns == pytest.approx(50.0)
        assert merged.num_buckets == 12

    def test_per_address_counts_concatenate_in_part_order(self):
        a = stats_with_writes(3, [(0, 1), (0, 1), (2, 1)])
        b = stats_with_writes(2, [(1, 1)])
        merged = WearStats.merge([a, b])
        # Part j's address i lands at global offset sum(sizes[:j]) + i.
        assert merged.writes_per_address.tolist() == [2, 0, 1, 0, 1]

    def test_merged_cdf_matches_concatenated_counts(self):
        a = stats_with_writes(4, [(0, 1), (1, 1), (1, 1)])
        b = stats_with_writes(4, [(3, 1)])
        merged = WearStats.merge([a, b])
        values, cum = merged.address_write_cdf()
        expected_values, expected_cum = cdf_of_counts(
            np.concatenate([a.writes_per_address, b.writes_per_address])
        )
        assert np.array_equal(values, expected_values)
        assert np.allclose(cum, expected_cum)

    def test_summary_consistency(self):
        a = stats_with_writes(4, [(0, 8), (1, 4)])
        b = stats_with_writes(4, [(2, 6)])
        merged = WearStats.merge([a, b])
        summary = merged.summary()
        assert summary["writes"] == 3
        assert summary["bit_updates"] == 18
        assert summary["mean_bit_updates_per_write"] == pytest.approx(6.0)

    def test_bit_wear_merges_when_all_parts_track(self):
        a = stats_with_writes(2, [(0, 3)], track_bit_wear=True)
        b = stats_with_writes(2, [(1, 5)], track_bit_wear=True)
        merged = WearStats.merge([a, b])
        assert merged.bit_wear is not None
        assert merged.bit_wear.shape == (4, 32)
        assert int(merged.bit_wear[0].sum()) == 3
        assert int(merged.bit_wear[3].sum()) == 5
        values, cum = merged.bit_wear_cdf()
        assert cum[-1] == pytest.approx(1.0)

    def test_bit_wear_dropped_when_any_part_does_not_track(self):
        a = stats_with_writes(2, [(0, 3)], track_bit_wear=True)
        b = stats_with_writes(2, [(1, 5)])
        merged = WearStats.merge([a, b])
        assert merged.bit_wear is None
        with pytest.raises(ValueError, match="track_bit_wear"):
            merged.bit_wear_cdf()

    def test_merge_is_a_snapshot(self):
        a = stats_with_writes(2, [(0, 1)])
        merged = WearStats.merge([a])
        a.record_write(1, 9, 0, 1, 1, 10.0)
        assert merged.total_writes == 1
        assert merged.writes_per_address.tolist() == [1, 0]

    def test_single_part_round_trips(self):
        a = stats_with_writes(3, [(1, 4)])
        merged = WearStats.merge([a])
        assert merged.summary() == a.summary()

    def test_empty_part_contributes_only_capacity(self):
        # A shard that saw no traffic must not perturb totals — only its
        # (all-zero) address range joins the merged wear map.
        busy = stats_with_writes(3, [(0, 5), (2, 7)])
        idle = WearStats(4, 4, False)
        merged = WearStats.merge([busy, idle])
        assert merged.summary() == busy.summary()
        assert merged.num_buckets == 7
        assert merged.writes_per_address.tolist() == [1, 0, 1, 0, 0, 0, 0]

    def test_all_parts_empty(self):
        merged = WearStats.merge([WearStats(2, 4, False), WearStats(3, 4, False)])
        assert merged.total_writes == 0
        assert merged.total_bit_updates == 0
        assert merged.num_buckets == 5
        assert merged.writes_per_address.tolist() == [0] * 5

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            WearStats.merge([])

    def test_mismatched_bucket_bytes_rejected(self):
        a = WearStats(2, 4, False)
        b = WearStats(2, 8, False)
        with pytest.raises(ValueError, match="bucket sizes"):
            WearStats.merge([a, b])

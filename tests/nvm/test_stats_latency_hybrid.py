"""Tests for wear statistics, the latency table, and the hybrid layout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nvm import (
    TECHNOLOGIES,
    DRAMRegion,
    HybridMemory,
    LatencyModel,
    WearStats,
    cdf_of_counts,
)


class TestCDF:
    def test_simple_distribution(self):
        values, cum = cdf_of_counts(np.array([0, 0, 1, 2, 2, 2]))
        assert values.tolist() == [0, 1, 2]
        assert cum.tolist() == pytest.approx([2 / 6, 3 / 6, 1.0])

    def test_monotone_and_ends_at_one(self, rng):
        counts = rng.integers(0, 20, 500)
        _, cum = cdf_of_counts(counts)
        assert np.all(np.diff(cum) >= 0)
        assert cum[-1] == pytest.approx(1.0)

    def test_empty(self):
        values, cum = cdf_of_counts(np.array([], dtype=np.int64))
        assert cum.tolist() == [1.0]

    def test_2d_input_flattened(self):
        values, cum = cdf_of_counts(np.array([[0, 1], [1, 1]]))
        assert cum[-1] == pytest.approx(1.0)
        assert cum[0] == pytest.approx(0.25)


class TestWearStats:
    def test_record_and_summary(self):
        stats = WearStats(num_buckets=4, bucket_bytes=8)
        stats.record_write(1, 10, 2, 3, 1, 600.0)
        stats.record_read(60.0)
        summary = stats.summary()
        assert summary["writes"] == 1
        assert summary["bit_updates"] == 10
        assert summary["aux_bit_updates"] == 2
        assert summary["mean_bit_updates_per_write"] == 10.0
        assert summary["mean_lines_per_write"] == 1.0

    def test_reset(self):
        stats = WearStats(num_buckets=4, bucket_bytes=8, track_bit_wear=True)
        stats.record_write(0, 1, 0, 1, 1, 600.0, np.ones(64, dtype=np.uint8))
        stats.reset()
        assert stats.total_writes == 0
        assert stats.bit_wear.sum() == 0

    def test_bit_tracking_requires_mask(self):
        stats = WearStats(num_buckets=4, bucket_bytes=8, track_bit_wear=True)
        with pytest.raises(ValueError, match="no bit mask"):
            stats.record_write(0, 1, 0, 1, 1, 600.0)

    def test_empty_stats_means(self):
        stats = WearStats(num_buckets=4, bucket_bytes=8)
        assert stats.mean_bit_updates_per_write == 0.0
        assert stats.mean_lines_per_write == 0.0


class TestTechnologies:
    def test_table_one_rows_present(self):
        assert set(TECHNOLOGIES) == {
            "HDD", "DRAM", "PCM", "ReRAM", "SLC Flash", "STT-RAM",
        }

    def test_pcm_endurance_range(self):
        pcm = TECHNOLOGIES["PCM"]
        assert pcm.endurance_log10 == (8, 9)
        assert 1e8 <= pcm.endurance_cycles <= 1e9

    def test_dram_outlives_pcm(self):
        assert (
            TECHNOLOGIES["DRAM"].endurance_cycles
            > TECHNOLOGIES["PCM"].endurance_cycles
        )

    def test_latency_model_from_technology(self):
        model = LatencyModel.for_technology("PCM")
        assert model.line_write_ns == pytest.approx(135.0)  # mean of 120-150
        assert model.write_ns(2) == pytest.approx(270.0)

    def test_default_model_is_3dxpoint(self):
        model = LatencyModel()
        assert model.write_ns(1) == pytest.approx(600.0)


class TestHybridMemory:
    def test_dram_accounting(self):
        dram = DRAMRegion()
        dram.write(100)
        dram.read(64)
        assert dram.bytes_written == 100
        assert dram.write_ops == 1
        assert dram.read_ops == 1
        assert dram.latency_ns > 0

    def test_hybrid_composition(self, rng):
        hybrid = HybridMemory(num_buckets=8, bucket_bytes=32)
        hybrid.nvm.write(0, rng.integers(0, 256, 32, dtype=np.uint8))
        hybrid.dram.write(16)
        assert hybrid.nvm.stats.total_writes == 1
        assert hybrid.dram.write_ops == 1
        hybrid.reset_stats()
        assert hybrid.nvm.stats.total_writes == 0
        assert hybrid.dram.write_ops == 0

    def test_endurance_ratio_is_huge(self):
        hybrid = HybridMemory(num_buckets=2, bucket_bytes=8)
        assert hybrid.endurance_ratio > 1e6

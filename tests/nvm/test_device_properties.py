"""Property-based tests: accounting conservation on the NVM device.

Whatever sequence of writes hits the device, the aggregate statistics
must equal the sum of the per-operation reports, the stored contents must
equal the last write per address, and bit-wear counters must sum to the
total bit updates.  These invariants are what every experiment's numbers
rest on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm import SimulatedNVM
from repro.writeschemes import default_schemes

operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),        # address
        st.binary(min_size=8, max_size=8),            # payload
        st.integers(min_value=0, max_value=4),        # scheme index
    ),
    max_size=40,
)


@given(operations)
@settings(max_examples=40, deadline=None)
def test_stats_equal_sum_of_reports(ops):
    nvm = SimulatedNVM(8, 8, track_bit_wear=True)
    schemes = default_schemes()
    totals = {"bits": 0, "aux": 0, "words": 0, "lines": 0, "latency": 0.0}
    for address, payload, scheme_idx in ops:
        report = nvm.write(
            address, np.frombuffer(payload, dtype=np.uint8), schemes[scheme_idx]
        )
        totals["bits"] += report.bit_updates
        totals["aux"] += report.aux_bit_updates
        totals["words"] += report.words_touched
        totals["lines"] += report.lines_touched
        totals["latency"] += report.latency_ns
    assert nvm.stats.total_bit_updates == totals["bits"]
    assert nvm.stats.total_aux_bit_updates == totals["aux"]
    assert nvm.stats.total_words_touched == totals["words"]
    assert nvm.stats.total_lines_touched == totals["lines"]
    assert nvm.stats.total_write_latency_ns == totals["latency"]
    assert nvm.stats.total_writes == len(ops)
    # Bit-wear counters decompose the same total by position.
    assert int(nvm.stats.bit_wear.sum()) == totals["bits"]


@given(operations)
@settings(max_examples=40, deadline=None)
def test_logical_contents_equal_last_write(ops):
    nvm = SimulatedNVM(8, 8)
    schemes = default_schemes()
    last: dict[int, tuple[bytes, int]] = {}
    for address, payload, scheme_idx in ops:
        nvm.write(address, np.frombuffer(payload, dtype=np.uint8),
                  schemes[scheme_idx])
        last[address] = (payload, scheme_idx)
    for address, (payload, scheme_idx) in last.items():
        logical = nvm.read_logical(address, schemes[scheme_idx])
        assert logical.tobytes() == payload


@given(operations)
@settings(max_examples=30, deadline=None)
def test_writes_per_address_partition_total(ops):
    nvm = SimulatedNVM(8, 8)
    schemes = default_schemes()
    for address, payload, scheme_idx in ops:
        nvm.write(address, np.frombuffer(payload, dtype=np.uint8),
                  schemes[scheme_idx])
    assert int(nvm.stats.writes_per_address.sum()) == len(ops)

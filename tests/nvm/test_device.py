"""Unit tests for the simulated NVM device."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CapacityError
from repro.nvm import LatencyModel, SimulatedNVM
from repro.writeschemes import DataComparisonWrite, FlipNWrite, MinShift


@pytest.fixture
def nvm() -> SimulatedNVM:
    return SimulatedNVM(num_buckets=16, bucket_bytes=64)


class TestGeometry:
    def test_lines_per_bucket(self):
        assert SimulatedNVM(4, 64).lines_per_bucket == 1
        assert SimulatedNVM(4, 128).lines_per_bucket == 2
        assert SimulatedNVM(4, 100).lines_per_bucket == 2  # padded

    def test_words_per_bucket(self):
        assert SimulatedNVM(4, 64, word_bytes=4).words_per_bucket == 16

    def test_rejects_unaligned_bucket(self):
        with pytest.raises(ValueError, match="multiple"):
            SimulatedNVM(4, 10, word_bytes=4)

    def test_rejects_empty_zone(self):
        with pytest.raises(ValueError):
            SimulatedNVM(0, 64)


class TestReadWrite:
    def test_load_then_read(self, nvm, rng):
        data = rng.integers(0, 256, 64, dtype=np.uint8)
        nvm.load(3, data)
        assert np.array_equal(nvm.read(3), data)

    def test_read_returns_copy(self, nvm):
        first = nvm.read(0)
        first[:] = 99
        assert nvm.read(0)[0] == 0

    def test_write_is_dcw_by_default(self, nvm, rng):
        old = rng.integers(0, 256, 64, dtype=np.uint8)
        new = old.copy()
        new[0] ^= 0x03  # exactly two differing bits
        nvm.load(0, old)
        report = nvm.write(0, new)
        assert report.bit_updates == 2
        assert report.words_touched == 1
        assert report.lines_touched == 1
        assert np.array_equal(nvm.read(0), new)

    def test_identical_write_touches_nothing(self, nvm, rng):
        data = rng.integers(0, 256, 64, dtype=np.uint8)
        nvm.load(0, data)
        report = nvm.write(0, data)
        assert report.bit_updates == 0
        assert report.lines_touched == 0
        assert report.latency_ns == 0.0

    def test_out_of_range_address(self, nvm):
        with pytest.raises(CapacityError):
            nvm.read(16)
        with pytest.raises(CapacityError):
            nvm.write(-1, np.zeros(64, dtype=np.uint8))

    def test_wrong_payload_shape(self, nvm):
        with pytest.raises(ValueError, match="payload shape"):
            nvm.write(0, np.zeros(32, dtype=np.uint8))

    def test_load_many(self, nvm, rng):
        rows = rng.integers(0, 256, (4, 64), dtype=np.uint8)
        nvm.load_many(2, rows)
        for i in range(4):
            assert np.array_equal(nvm.peek(2 + i), rows[i])

    def test_load_many_overflow(self, nvm, rng):
        rows = rng.integers(0, 256, (4, 64), dtype=np.uint8)
        with pytest.raises(CapacityError):
            nvm.load_many(14, rows)


class TestMultiLineAccounting:
    def test_lines_touched_counts_dirty_lines_only(self, rng):
        nvm = SimulatedNVM(4, 256)  # 4 cache lines per bucket
        old = rng.integers(0, 256, 256, dtype=np.uint8)
        nvm.load(0, old)
        new = old.copy()
        new[0] ^= 0xFF       # line 0
        new[200] ^= 0xFF     # line 3
        report = nvm.write(0, new)
        assert report.lines_touched == 2
        assert report.latency_ns == pytest.approx(2 * 600.0)

    def test_conventional_latency_uses_all_lines(self, rng):
        from repro.writeschemes import ConventionalWrite

        nvm = SimulatedNVM(4, 256)
        report = nvm.write(0, rng.integers(0, 256, 256, dtype=np.uint8),
                           ConventionalWrite())
        assert report.lines_touched == 4


class TestSchemesOnDevice:
    def test_scheme_aux_state_round_trips(self, rng):
        nvm = SimulatedNVM(4, 8)
        scheme = FlipNWrite(word_bytes=4)
        nvm.load(0, rng.integers(0, 256, 8, dtype=np.uint8))
        logical = rng.integers(0, 256, 8, dtype=np.uint8)
        nvm.write(0, logical, scheme)
        assert np.array_equal(nvm.read_logical(0, scheme), logical)

    def test_read_logical_requires_scheme_when_transformed(self, rng):
        nvm = SimulatedNVM(4, 8)
        nvm.load(0, np.zeros(8, dtype=np.uint8))
        nvm.write(0, np.full(8, 0xFF, dtype=np.uint8), MinShift())
        with pytest.raises(ValueError, match="was written with scheme"):
            nvm.read_logical(0)

    def test_plain_write_clears_stale_aux(self, rng):
        nvm = SimulatedNVM(4, 8)
        nvm.write(0, np.full(8, 0xFF, dtype=np.uint8), FlipNWrite(4))
        nvm.write(0, np.zeros(8, dtype=np.uint8))  # DCW, stores verbatim
        assert np.array_equal(nvm.read_logical(0), np.zeros(8, dtype=np.uint8))

    def test_dcw_scheme_equals_device_default(self, rng):
        nvm_a = SimulatedNVM(4, 64)
        nvm_b = SimulatedNVM(4, 64)
        old = rng.integers(0, 256, 64, dtype=np.uint8)
        new = rng.integers(0, 256, 64, dtype=np.uint8)
        nvm_a.load(0, old)
        nvm_b.load(0, old)
        ra = nvm_a.write(0, new)
        rb = nvm_b.write(0, new, DataComparisonWrite())
        assert ra.bit_updates == rb.bit_updates
        assert ra.lines_touched == rb.lines_touched


class TestWearAccounting:
    def test_writes_per_address(self, rng):
        nvm = SimulatedNVM(8, 64)
        for _ in range(3):
            nvm.write(5, rng.integers(0, 256, 64, dtype=np.uint8))
        assert nvm.stats.writes_per_address[5] == 3
        assert nvm.stats.total_writes == 3

    def test_bit_wear_tracks_updates(self):
        nvm = SimulatedNVM(2, 8, track_bit_wear=True)
        new = np.zeros(8, dtype=np.uint8)
        new[0] = 0x80
        nvm.write(0, new)
        assert nvm.stats.bit_wear[0, 0] == 1
        assert nvm.stats.bit_wear.sum() == 1

    def test_bit_wear_disabled_raises_on_cdf(self):
        nvm = SimulatedNVM(2, 8)
        with pytest.raises(ValueError, match="track_bit_wear"):
            nvm.stats.bit_wear_cdf()

    def test_hamming_many(self, rng):
        nvm = SimulatedNVM(8, 16)
        rows = rng.integers(0, 256, (8, 16), dtype=np.uint8)
        nvm.load_many(0, rows)
        payload = rng.integers(0, 256, 16, dtype=np.uint8)
        from repro._bitops import hamming_distance

        distances = nvm.hamming_many(np.arange(8), payload)
        for i in range(8):
            assert distances[i] == hamming_distance(rows[i], payload)

    def test_gather_into_matches_peek_many(self, rng):
        nvm = SimulatedNVM(8, 16)
        rows = rng.integers(0, 256, (8, 16), dtype=np.uint8)
        nvm.load_many(0, rows)
        addresses = np.array([5, 0, 5, 2], dtype=np.int64)
        out = np.empty((4, 16), dtype=np.uint8)
        nvm.gather_into(addresses, out)
        assert np.array_equal(out, nvm.peek_many(addresses))
        # Unaccounted: the cache fill is DRAM metadata maintenance.
        assert nvm.stats.total_reads == 0

    def test_gather_into_rejects_bad_address_and_buffer(self):
        nvm = SimulatedNVM(4, 8)
        out = np.empty((1, 8), dtype=np.uint8)
        with pytest.raises(CapacityError):
            nvm.gather_into(np.array([4]), out)
        with pytest.raises(ValueError, match="out buffer"):
            nvm.gather_into(np.array([0, 1]), out)
        with pytest.raises(ValueError, match="out buffer"):
            nvm.gather_into(np.array([0]), np.empty((1, 8), dtype=np.int64))

    def test_contents_view_is_readonly(self, nvm):
        with pytest.raises(ValueError):
            nvm.contents[0, 0] = 1

    def test_snapshot_is_independent(self, nvm, rng):
        snap = nvm.snapshot()
        nvm.write(0, rng.integers(0, 256, 64, dtype=np.uint8))
        assert snap[0].sum() == 0


class TestWriteMany:
    """The vectorized multi-row write must be indistinguishable from the
    same rows written one at a time."""

    @staticmethod
    def twin_devices(rng, n=16, width=24, **kwargs):
        devices = []
        old = rng.integers(0, 256, (n, width), dtype=np.uint8)
        for _ in range(2):
            nvm = SimulatedNVM(n, width, word_bytes=4, **kwargs)
            nvm.load_many(0, old)
            devices.append(nvm)
        return devices[0], devices[1]

    def test_matches_sequential_writes(self, rng):
        single, bulk = self.twin_devices(rng)
        addresses = rng.permutation(16)[:10]
        rows = rng.integers(0, 256, (10, 24), dtype=np.uint8)
        expected = [single.write(int(a), row) for a, row in zip(addresses, rows)]
        got = bulk.write_many(addresses, rows)
        assert expected == got
        assert np.array_equal(single.snapshot(), bulk.snapshot())
        assert single.stats.summary() == bulk.stats.summary()
        assert np.array_equal(
            single.stats.writes_per_address, bulk.stats.writes_per_address
        )

    def test_matches_sequential_with_bit_wear(self, rng):
        single, bulk = self.twin_devices(rng, track_bit_wear=True)
        addresses = np.arange(16)
        rows = rng.integers(0, 256, (16, 24), dtype=np.uint8)
        for a, row in zip(addresses, rows):
            single.write(int(a), row)
        bulk.write_many(addresses, rows)
        assert np.array_equal(single.stats.bit_wear, bulk.stats.bit_wear)

    def test_duplicate_addresses_fall_back_to_row_order(self, rng):
        """Later rows to the same address must see earlier rows' data."""
        single, bulk = self.twin_devices(rng)
        addresses = np.array([3, 3, 5, 3])
        rows = rng.integers(0, 256, (4, 24), dtype=np.uint8)
        expected = [single.write(int(a), row) for a, row in zip(addresses, rows)]
        got = bulk.write_many(addresses, rows)
        assert expected == got
        assert np.array_equal(single.snapshot(), bulk.snapshot())
        assert single.stats.summary() == bulk.stats.summary()

    def test_scheme_writes_loop_per_row(self, rng):
        from repro.writeschemes import FlipNWrite

        single, bulk = self.twin_devices(rng)
        scheme_a, scheme_b = FlipNWrite(), FlipNWrite()
        addresses = np.arange(6)
        rows = rng.integers(0, 256, (6, 24), dtype=np.uint8)
        for a, row in zip(addresses, rows):
            single.write(int(a), row, scheme_a)
        bulk.write_many(addresses, rows, scheme_b)
        assert np.array_equal(single.snapshot(), bulk.snapshot())
        assert single.stats.summary() == bulk.stats.summary()
        for address in addresses:
            assert np.array_equal(
                single.read_logical(int(address), scheme_a),
                bulk.read_logical(int(address), scheme_b),
            )

    def test_shape_validation(self, rng):
        nvm = SimulatedNVM(4, 24)
        with pytest.raises(ValueError, match="rows shape"):
            nvm.write_many(np.array([0, 1]), np.zeros((3, 24), dtype=np.uint8))
        with pytest.raises(CapacityError):
            nvm.write_many(np.array([9]), np.zeros((1, 24), dtype=np.uint8))

    def test_empty_batch(self):
        nvm = SimulatedNVM(4, 24)
        assert nvm.write_many(
            np.array([], dtype=np.int64), np.zeros((0, 24), dtype=np.uint8)
        ) == []
        assert nvm.stats.total_writes == 0

    def test_peek_many_gathers_without_accounting(self, rng):
        nvm = SimulatedNVM(8, 24)
        rows = rng.integers(0, 256, (8, 24), dtype=np.uint8)
        nvm.load_many(0, rows)
        got = nvm.peek_many(np.array([5, 1, 5]))
        assert np.array_equal(got, rows[[5, 1, 5]])
        assert nvm.stats.total_reads == 0
        with pytest.raises(CapacityError):
            nvm.peek_many(np.array([8]))


class TestLatencyModelIntegration:
    def test_custom_latency(self, rng):
        nvm = SimulatedNVM(2, 64, latency=LatencyModel(line_write_ns=100.0))
        old = np.zeros(64, dtype=np.uint8)
        new = old.copy()
        new[0] = 1
        nvm.load(0, old)
        assert nvm.write(0, new).latency_ns == pytest.approx(100.0)

    def test_read_latency_accumulates(self, nvm):
        nvm.read(0)
        nvm.read(1)
        assert nvm.stats.total_reads == 2
        assert nvm.stats.total_read_latency_ns > 0

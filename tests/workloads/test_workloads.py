"""Tests for every workload generator: shape, determinism, structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro._bitops import hamming_distance
from repro.workloads import (
    SHERBROOKE,
    TRAFFIC_SEQ2,
    AmazonAccessWorkload,
    CIFARLikeWorkload,
    DocWordsWorkload,
    FashionLikeWorkload,
    MixtureWorkload,
    MNISTLikeWorkload,
    NormalIntWorkload,
    RoadNetworkWorkload,
    UniformIntWorkload,
    VideoWorkload,
    make_workload,
    workload_names,
)

ALL_NAMES = [
    "normal", "uniform", "amazon", "roadnet", "docwords",
    "mnist", "fashion", "cifar", "sherbrooke", "seq2",
    "zipfian", "churn",
]


@pytest.mark.parametrize("name", ALL_NAMES)
class TestGeneratorContract:
    def test_shape_and_dtype(self, name):
        workload = make_workload(name, seed=1)
        items = workload.generate(16)
        assert items.shape == (16, workload.item_bytes)
        assert items.dtype == np.uint8

    def test_deterministic_under_seed(self, name):
        a = make_workload(name, seed=9).generate(8)
        b = make_workload(name, seed=9).generate(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, name):
        a = make_workload(name, seed=1).generate(8)
        b = make_workload(name, seed=2).generate(8)
        assert not np.array_equal(a, b)

    def test_split_old_new_continues_stream(self, name):
        w1 = make_workload(name, seed=5)
        old, new = w1.split_old_new(4, 4)
        w2 = make_workload(name, seed=5)
        combined = w2.generate(8)
        assert np.array_equal(np.vstack([old, new]), combined)

    def test_item_bytes_word_aligned(self, name):
        # Buckets must be 4-byte-word aligned for the device.
        workload = make_workload(name, seed=0)
        assert workload.item_bytes % 4 == 0

    def test_batches_chunking_and_determinism(self, name):
        w1 = make_workload(name, seed=5)
        chunks = list(w1.batches(10, 4))
        assert [c.shape[0] for c in chunks] == [4, 4, 2]
        assert all(c.shape[1] == w1.item_bytes for c in chunks)
        # Same seed + same chunking -> the same stream.
        w2 = make_workload(name, seed=5)
        assert np.array_equal(np.vstack(chunks), np.vstack(list(w2.batches(10, 4))))
        # Chunks continue one stream: a following batch differs.
        follow_on = w1.batches(4, 4)
        assert not np.array_equal(next(follow_on), chunks[0])

    def test_batches_reject_bad_batch_size(self, name):
        with pytest.raises(ValueError, match="batch_size"):
            list(make_workload(name, seed=0).batches(4, 0))


class TestRegistry:
    def test_all_names_registered(self):
        assert set(workload_names()) == set(ALL_NAMES)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            make_workload("nope")


def mean_pairwise_hamming(items: np.ndarray, rng, pairs: int = 200) -> float:
    n = items.shape[0]
    idx = rng.integers(0, n, size=(pairs, 2))
    return float(np.mean([
        hamming_distance(items[i], items[j]) for i, j in idx
    ]))


class TestClusterability:
    """The structural property each stand-in must deliver (DESIGN.md §3)."""

    def test_amazon_within_role_closer_than_across(self, rng):
        w = AmazonAccessWorkload(seed=3, n_roles=4, flip_rate=0.005)
        items = w.generate(200)
        overall = mean_pairwise_hamming(items, rng)
        # Items re-generated from one role only:
        single = AmazonAccessWorkload(seed=3, n_roles=1, flip_rate=0.005)
        within = mean_pairwise_hamming(single.generate(200), rng)
        assert within < overall * 0.5

    def test_amazon_sparse(self):
        items = AmazonAccessWorkload(seed=0, density=0.08).generate(100)
        ones = np.unpackbits(items, axis=1).mean()
        assert ones < 0.15

    def test_uniform_is_incompressible(self, rng):
        items = UniformIntWorkload(seed=0).generate(400)
        mean = mean_pairwise_hamming(items, rng)
        # Random 64-bit items differ in ~32 bits.
        assert 28 < mean < 36

    def test_normal_clusters_better_than_uniform(self):
        """Pairwise bit distance of normals near 2^31 looks random (the
        carry effect), but *clustering* recovers the structure: k-means
        reduces inertia more on the normal stream than on uniform."""
        from repro._bitops import unpack_bits
        from repro.ml import KMeans

        def gain(workload):
            X = unpack_bits(workload.generate(600)).astype(np.float64)
            i1 = KMeans(1, seed=0, n_init=1).fit(X).inertia_
            i16 = KMeans(16, seed=0, n_init=1).fit(X).inertia_
            return i16 / i1

        assert gain(NormalIntWorkload(seed=0)) < gain(UniformIntWorkload(seed=0))

    def test_roadnet_regional_prefix_sharing(self, rng):
        w = RoadNetworkWorkload(seed=1, n_regions=1)
        items = w.generate(100)
        # Same region => identical high-order coordinate bytes most often.
        firsts = items[:, 0]
        assert len(np.unique(firsts)) <= 2

    def test_docwords_topics_cluster(self, rng):
        single = DocWordsWorkload(seed=2, n_topics=1)
        multi = DocWordsWorkload(seed=2, n_topics=10)
        within = mean_pairwise_hamming(single.generate(200), rng)
        across = mean_pairwise_hamming(multi.generate(200), rng)
        assert within < across

    def test_video_consecutive_frames_similar(self, rng):
        w = VideoWorkload(SHERBROOKE, seed=4)
        frames = w.generate(20)
        consecutive = np.mean([
            hamming_distance(frames[i], frames[i + 1]) for i in range(19)
        ])
        shuffled = mean_pairwise_hamming(frames, rng, pairs=50)
        assert consecutive <= shuffled

    def test_video_profiles_differ(self):
        assert SHERBROOKE.frame_bytes != TRAFFIC_SEQ2.frame_bytes
        a = VideoWorkload(SHERBROOKE, seed=1).generate(2)
        assert a.shape[1] == 64 * 64

    def test_mnist_fashion_families_disjoint(self, rng):
        """The Fig. 10 premise: the two image families are far apart."""
        mnist = MNISTLikeWorkload(seed=5).generate(50)
        fashion = FashionLikeWorkload(seed=5).generate(50)
        within_mnist = mean_pairwise_hamming(mnist, rng, pairs=50)
        cross = float(np.mean([
            hamming_distance(mnist[i], fashion[i]) for i in range(50)
        ]))
        assert cross > within_mnist

    def test_mnist_sparser_than_fashion(self):
        mnist = MNISTLikeWorkload(seed=0).generate(50)
        fashion = FashionLikeWorkload(seed=0).generate(50)
        # Stroke glyphs have much less "ink" than filled apparel shapes.
        assert (mnist > 100).mean() < (fashion > 100).mean()

    def test_cifar_class_palettes(self):
        items = CIFARLikeWorkload(seed=0).generate(50)
        assert items.shape == (50, 32 * 32 * 3)


class TestMixture:
    def test_weights_respected_statistically(self):
        # Degenerate sources make attribution easy: all-zero vs all-255.
        class Zeros(MNISTLikeWorkload):
            def generate(self, n):
                return np.zeros((n, self.item_bytes), dtype=np.uint8)

        class Ones(MNISTLikeWorkload):
            def generate(self, n):
                return np.full((n, self.item_bytes), 255, dtype=np.uint8)

        mix = MixtureWorkload([Zeros(seed=0), Ones(seed=0)], [1, 3], seed=0)
        items = mix.generate(400)
        ones_fraction = (items[:, 0] == 255).mean()
        assert 0.6 < ones_fraction < 0.9

    def test_mismatched_widths_rejected(self):
        with pytest.raises(ValueError, match="item_bytes"):
            MixtureWorkload([MNISTLikeWorkload(seed=0), CIFARLikeWorkload(seed=0)])

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            MixtureWorkload([])

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            MixtureWorkload([MNISTLikeWorkload(seed=0)], [1, 2])
        with pytest.raises(ValueError):
            MixtureWorkload([MNISTLikeWorkload(seed=0)], [0.0])


class TestValidation:
    def test_workload_rejects_bad_item_bytes(self):
        with pytest.raises(ValueError):
            AmazonAccessWorkload(item_bytes=0)

    def test_amazon_param_validation(self):
        with pytest.raises(ValueError):
            AmazonAccessWorkload(density=1.5)
        with pytest.raises(ValueError):
            AmazonAccessWorkload(flip_rate=0.7)

    def test_roadnet_minimum_width(self):
        with pytest.raises(ValueError):
            RoadNetworkWorkload(item_bytes=8)

"""Tests for the video scene-mode machinery (illumination cycles)."""

from __future__ import annotations

import numpy as np

from repro._bitops import hamming_distance
from repro.workloads import SHERBROOKE, VideoProfile, VideoWorkload


class TestSceneModes:
    def test_modes_change_over_time(self):
        w = VideoWorkload(SHERBROOKE, seed=0)
        modes = []
        for _ in range(SHERBROOKE.mode_period * 6):
            w._advance()
            modes.append(w._mode)
        assert len(set(modes)) > 1

    def test_single_mode_profile_is_static(self):
        profile = VideoProfile(name="static", n_scene_modes=1)
        w = VideoWorkload(profile, seed=0)
        for _ in range(200):
            w._advance()
        assert w._mode == 0

    def test_same_mode_frames_closer_than_cross_mode(self):
        profile = VideoProfile(name="t", width=32, height=32, mode_period=10,
                               n_scene_modes=4, noise_rate=0.0)
        w = VideoWorkload(profile, seed=3)
        frames = w.generate(200)
        modes = []
        # Recompute the mode sequence from a twin generator.
        twin = VideoWorkload(profile, seed=3)
        for _ in range(200):
            twin._advance()
            modes.append(twin._mode)
        modes = np.asarray(modes)
        same, cross = [], []
        for i in range(0, 180, 7):
            for j in range(i + 1, min(i + 30, 200), 7):
                d = hamming_distance(frames[i], frames[j])
                (same if modes[i] == modes[j] else cross).append(d)
        if same and cross:
            assert np.mean(same) < np.mean(cross)

    def test_frame_stream_deterministic(self):
        a = VideoWorkload(SHERBROOKE, seed=9).generate(12)
        b = VideoWorkload(SHERBROOKE, seed=9).generate(12)
        assert np.array_equal(a, b)

    def test_objects_textured_not_solid(self):
        """Object interiors carry a fixed pattern (vehicle texture), so a
        moving object does not produce uniform byte runs."""
        profile = VideoProfile(name="t", width=32, height=32, noise_rate=0.0,
                               n_objects=1, object_size=(10, 12))
        w = VideoWorkload(profile, seed=1)
        texture = w._textures[0]
        assert np.unique(texture).size > 4

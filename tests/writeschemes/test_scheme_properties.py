"""Property-based invariants that every write scheme must uphold.

These are the contracts the NVM device and the benchmark harness rely on:

1. *Round-trip*: decode(stored, aux) == logical value, after any number of
   consecutive writes to the same location.
2. *Mask consistency*: the update mask is exactly XOR(old physical, new
   physical) — a scheme may not program cells it did not change, nor
   change cells it did not program.
3. *Shape preservation*: stored buffers keep the bucket size.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.writeschemes import (
    Captopril,
    ConventionalWrite,
    DataComparisonWrite,
    FlipNWrite,
    MinShift,
)

SCHEMES = [
    ConventionalWrite(),
    DataComparisonWrite(),
    FlipNWrite(word_bytes=4),
    MinShift(),
    Captopril(n_segments=4),
]

buffers = st.integers(min_value=1, max_value=4).flatmap(
    lambda words: st.binary(min_size=words * 4, max_size=words * 4)
).map(lambda b: np.frombuffer(b, dtype=np.uint8).copy())


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
class TestSchemeContracts:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_after_write_chain(self, scheme, data):
        """Writing a chain of values and decoding after each one always
        recovers the last logical value."""
        nwords = data.draw(st.integers(min_value=1, max_value=3))
        width = nwords * 4
        physical = np.frombuffer(
            data.draw(st.binary(min_size=width, max_size=width)), dtype=np.uint8
        ).copy()
        aux = None
        for _ in range(3):
            logical = np.frombuffer(
                data.draw(st.binary(min_size=width, max_size=width)), dtype=np.uint8
            ).copy()
            outcome = scheme.prepare(physical, logical, aux)
            physical, aux = outcome.stored, outcome.aux_state
            assert np.array_equal(scheme.decode(physical, aux), logical)

    @given(buffers, buffers)
    @settings(max_examples=30, deadline=None)
    def test_mask_is_physical_xor(self, scheme, a, b):
        n = min(a.size, b.size) // 4 * 4
        if n == 0:
            return
        old, new = a[:n], b[:n]
        outcome = scheme.prepare(old, new, None)
        assert np.array_equal(
            outcome.update_mask, np.bitwise_xor(old, outcome.stored)
        ) or scheme.name == "Conventional"
        if scheme.name == "Conventional":
            # Conventional programs everything; mask must cover the XOR.
            xor = np.bitwise_xor(old, outcome.stored)
            assert np.array_equal(np.bitwise_and(outcome.update_mask, xor), xor)

    @given(buffers, buffers)
    @settings(max_examples=30, deadline=None)
    def test_stored_shape_matches(self, scheme, a, b):
        n = min(a.size, b.size) // 4 * 4
        if n == 0:
            return
        outcome = scheme.prepare(a[:n], b[:n], None)
        assert outcome.stored.shape == (n,)
        assert outcome.update_mask.shape == (n,)
        assert outcome.aux_bit_updates >= 0

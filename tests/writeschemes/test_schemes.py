"""Unit tests for each write scheme's exact semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro._bitops import hamming_distance, popcount, rotate_bits
from repro.writeschemes import (
    Captopril,
    ConventionalWrite,
    DataComparisonWrite,
    FlipNWrite,
    MinShift,
    default_schemes,
)


def buf(*values: int) -> np.ndarray:
    return np.array(values, dtype=np.uint8)


class TestConventional:
    def test_programs_every_cell(self):
        scheme = ConventionalWrite()
        old = buf(0x00, 0xFF, 0xAA, 0x55)
        new = buf(0x00, 0xFF, 0xAA, 0x55)  # identical data still pays
        outcome = scheme.prepare(old, new)
        assert popcount(outcome.update_mask) == 32
        assert outcome.aux_bit_updates == 0

    def test_stores_verbatim(self):
        scheme = ConventionalWrite()
        new = buf(1, 2, 3, 4)
        outcome = scheme.prepare(buf(9, 9, 9, 9), new)
        assert np.array_equal(outcome.stored, new)


class TestDCW:
    def test_updates_equal_hamming(self, rng):
        scheme = DataComparisonWrite()
        old = rng.integers(0, 256, 16, dtype=np.uint8)
        new = rng.integers(0, 256, 16, dtype=np.uint8)
        outcome = scheme.prepare(old, new)
        assert popcount(outcome.update_mask) == hamming_distance(old, new)

    def test_no_write_when_identical(self):
        scheme = DataComparisonWrite()
        data = buf(7, 7, 7, 7)
        outcome = scheme.prepare(data, data)
        assert popcount(outcome.update_mask) == 0

    def test_decode_is_identity(self):
        scheme = DataComparisonWrite()
        data = buf(1, 2, 3, 4)
        assert np.array_equal(scheme.decode(data, None), data)


class TestFNW:
    def test_inverts_when_most_bits_flip(self):
        scheme = FlipNWrite(word_bytes=4)
        old = buf(0x00, 0x00, 0x00, 0x00)
        new = buf(0xFF, 0xFF, 0xFF, 0xFE)  # 31 of 32 bits differ
        outcome = scheme.prepare(old, new, None)
        # Storing inverted costs 1 data bit + 1 flip bit < 31.
        assert popcount(outcome.update_mask) == 1
        assert outcome.aux_bit_updates == 1
        assert outcome.aux_state.tolist() == [True]

    def test_plain_when_few_bits_flip(self):
        scheme = FlipNWrite(word_bytes=4)
        old = buf(0x00, 0x00, 0x00, 0x00)
        new = buf(0x01, 0x00, 0x00, 0x00)
        outcome = scheme.prepare(old, new, None)
        assert popcount(outcome.update_mask) == 1
        assert outcome.aux_bit_updates == 0
        assert outcome.aux_state.tolist() == [False]

    def test_bound_per_word(self, rng):
        scheme = FlipNWrite(word_bytes=4)
        for _ in range(50):
            old = rng.integers(0, 256, 8, dtype=np.uint8)
            new = rng.integers(0, 256, 8, dtype=np.uint8)
            outcome = scheme.prepare(old, new, None)
            per_word_bound = (32 + 1 + 1) // 2  # ceil((w+1)/2)
            total = popcount(outcome.update_mask) + outcome.aux_bit_updates
            assert total <= per_word_bound * 2

    def test_decode_roundtrip(self, rng):
        scheme = FlipNWrite(word_bytes=4)
        old = rng.integers(0, 256, 12, dtype=np.uint8)
        new = rng.integers(0, 256, 12, dtype=np.uint8)
        outcome = scheme.prepare(old, new, None)
        assert np.array_equal(scheme.decode(outcome.stored, outcome.aux_state), new)

    def test_flip_bit_cost_on_reversal(self):
        scheme = FlipNWrite(word_bytes=4)
        old = buf(0xFF, 0xFF, 0xFF, 0xFF)
        # Previously stored inverted (flip=1); now write data equal to the
        # stored physical pattern -> keeping it inverted would be free, but
        # the logical value is different.
        outcome = scheme.prepare(old, buf(0xFF, 0xFF, 0xFF, 0xFF),
                                 np.array([True]))
        # Candidate plain: hamming(old, new)=0 but flip bit 1->0 costs 1.
        # Candidate inverted: hamming(old, ~new)=32 + 0.  Plain wins.
        assert popcount(outcome.update_mask) == 0
        assert outcome.aux_bit_updates == 1

    def test_rejects_bad_word_size(self):
        with pytest.raises(ValueError):
            FlipNWrite(word_bytes=0)

    def test_rejects_unaligned_buffer(self):
        scheme = FlipNWrite(word_bytes=4)
        with pytest.raises(ValueError, match="multiple"):
            scheme.prepare(buf(1, 2, 3), buf(1, 2, 3), None)


class TestMinShift:
    def test_finds_exact_rotation(self, rng):
        scheme = MinShift()
        old = rng.integers(0, 256, 8, dtype=np.uint8)
        new = rotate_bits(old, -5)  # rotating new left by 5 recovers old
        outcome = scheme.prepare(old, new, None)
        # A perfect alignment exists, so data updates should be zero.
        assert popcount(outcome.update_mask) == 0

    def test_never_worse_than_dcw_on_data_bits(self, rng):
        scheme = MinShift()
        for _ in range(20):
            old = rng.integers(0, 256, 8, dtype=np.uint8)
            new = rng.integers(0, 256, 8, dtype=np.uint8)
            outcome = scheme.prepare(old, new, None)
            assert popcount(outcome.update_mask) <= hamming_distance(old, new)

    def test_decode_roundtrip(self, rng):
        scheme = MinShift()
        old = rng.integers(0, 256, 16, dtype=np.uint8)
        new = rng.integers(0, 256, 16, dtype=np.uint8)
        outcome = scheme.prepare(old, new, None)
        assert np.array_equal(scheme.decode(outcome.stored, outcome.aux_state), new)

    def test_shift_field_cost_counted(self, rng):
        scheme = MinShift()
        old = rng.integers(0, 256, 8, dtype=np.uint8)
        new = rotate_bits(old, -1)
        outcome = scheme.prepare(old, new, None)
        if outcome.aux_state != 0:
            assert outcome.aux_bit_updates > 0

    def test_rotation_scores_match_bruteforce(self, rng):
        from repro.writeschemes.minshift import _rotation_hammings
        from repro._bitops import unpack_bits

        old = rng.integers(0, 256, 4, dtype=np.uint8)
        new = rng.integers(0, 256, 4, dtype=np.uint8)
        fast = _rotation_hammings(unpack_bits(old), unpack_bits(new))
        for shift in range(32):
            expected = hamming_distance(old, rotate_bits(new, shift))
            assert fast[shift] == expected


class TestCaptopril:
    def test_inverts_heavy_segments(self):
        scheme = Captopril(n_segments=2)
        old = buf(0x00, 0x00)
        new = buf(0xFF, 0x01)
        outcome = scheme.prepare(old, new, None)
        # Segment 0 (first byte) flips all 8 bits -> invert (0 data bits +
        # 1 mask bit); segment 1 writes 1 bit plain.
        assert popcount(outcome.update_mask) == 1
        assert outcome.aux_bit_updates == 1
        assert outcome.aux_state.tolist() == [True, False]

    def test_decode_roundtrip(self, rng):
        scheme = Captopril(n_segments=16)
        old = rng.integers(0, 256, 64, dtype=np.uint8)
        new = rng.integers(0, 256, 64, dtype=np.uint8)
        outcome = scheme.prepare(old, new, None)
        assert np.array_equal(scheme.decode(outcome.stored, outcome.aux_state), new)

    def test_name_includes_segments(self):
        assert Captopril(16).name == "CAP16"
        assert Captopril(8).name == "CAP8"

    def test_rejects_nonpositive_segments(self):
        with pytest.raises(ValueError):
            Captopril(0)

    def test_segment_bounds_cover_block(self):
        scheme = Captopril(n_segments=16)
        bounds = scheme._segment_bounds(512)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 512
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start


class TestDefaultSchemes:
    def test_contains_papers_baselines(self):
        names = [s.name for s in default_schemes()]
        assert names == ["Conventional", "DCW", "FNW", "MinShift", "CAP16"]

"""Worker-crash absorption: ingest retry and tier flush retry.

A shard worker process dying mid-flush used to surface as
``WorkerCrashedError`` to whoever held the batch.  Both async write
paths now absorb it — the op stream is an idempotent upsert stream, so
re-submitting the whole failed sub-batch is safe:

* :class:`~repro.ingest.queue.IngestQueue` re-dispatches the failed
  shard's runs with jittered exponential backoff (``ops_retried``);
* :class:`~repro.tier.store.TieredStore` re-submits the flush batch
  (``TierStats.flush_retries``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import IngestQueue, PNWConfig, make_store
from repro.errors import WorkerCrashedError
from tests.conftest import clustered_values


def process_config(**overrides) -> PNWConfig:
    base = dict(
        num_buckets=192,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        shards=3,
        executor="process",
    )
    base.update(overrides)
    return PNWConfig(**base)


def warmed(config: PNWConfig):
    store = make_store(config)
    rng = np.random.default_rng(42)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


def batch_of(rng: np.random.Generator, n: int,
             prefix: str = "k") -> list[tuple[bytes, bytes]]:
    values = clustered_values(rng, n, 24, flip_rate=0.05)
    return [(f"{prefix}{i}".encode(), values[i].tobytes()) for i in range(n)]


class TestIngestAbsorbsWorkerCrash:
    def test_midflush_kill_is_retried_not_surfaced(self):
        store = warmed(process_config())
        try:
            pairs = batch_of(np.random.default_rng(1), 48)
            # Arm every shard: whichever gets the first sub-batch dies
            # after landing one row of it.
            for client in store.stores:
                client.sabotage_next_flush(1)
            queue = IngestQueue(store, max_batch=16, max_delay=0.002)
            futures = [queue.put(key, value) for key, value in pairs]
            queue.close()
            # Every future resolves with a report — the crash never
            # reaches the producers.
            for future in futures:
                assert future.result(timeout=10) is not None
            assert queue.ops_retried > 0
            for key, value in pairs:
                assert store.get(key) == value
        finally:
            store.close()

    def test_direct_batch_still_surfaces_the_crash(self):
        # The retry belongs to the async queue; the synchronous
        # put_many contract (raise, caller replays) is unchanged.
        store = warmed(process_config())
        try:
            pairs = batch_of(np.random.default_rng(2), 36)
            by_shard: dict[int, list] = {}
            for key, value in pairs:
                by_shard.setdefault(store.shard_of_key(key), []).append(
                    (key, value)
                )
            torn = max(by_shard, key=lambda sid: len(by_shard[sid]))
            store.stores[torn].sabotage_next_flush(len(by_shard[torn]) // 2)
            with pytest.raises(WorkerCrashedError):
                store.put_many(pairs)
        finally:
            store.close()


class TestTierFlushAbsorbsWorkerCrash:
    def test_writeback_flush_retries_through_the_crash(self):
        config = process_config(
            tier_mode="write_back",
            tier_cache_entries=32,
            tier_writeback_entries=64,
            tier_flush_ops=4096,
        )
        store = warmed(config)
        try:
            pairs = batch_of(np.random.default_rng(3), 40)
            store.put_many(pairs)  # staged in DRAM, backend untouched
            for client in store.store.stores:
                client.sabotage_next_flush(1)
            flushed = store.flush()
            assert flushed == len(pairs)
            assert store.tier_stats.flush_retries > 0
            for key, value in pairs:
                assert store.store.get(key) == value
        finally:
            store.close()

"""FaultModel unit contracts: determinism, stuck-at-current, ageing.

The fault model is the root of the media-robustness story, so its
semantics are pinned directly:

* same ``(geometry, rate, budget, seed)`` ⇒ same weakened-cell map and
  the same stuck mask after the same write history (process workers
  rely on this to reconstruct the media after a respawn);
* a stuck cell freezes at its *current* value — writes through it lose
  the new bit but never corrupt the data at rest;
* ``filter_many`` is byte-identical to looping ``filter``;
* ``age()`` freezes pending cells without touching stored bytes, which
  is exactly what makes its faults *latent* (scrubber fodder).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nvm import FaultModel

ROWS, COLS = 64, 16


def make_model(**overrides) -> FaultModel:
    base = dict(fault_rate=0.05, fault_budget=0, seed=11)
    base.update(overrides)
    return FaultModel(ROWS, COLS, **base)


def random_rows(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.integers(0, 256, size=(n, COLS), dtype=np.uint8)


class TestDeterminism:
    def test_same_seed_same_media(self):
        a, b = make_model(), make_model()
        rng = np.random.default_rng(3)
        old = random_rows(rng, ROWS)
        new = random_rows(rng, ROWS)
        addresses = np.arange(ROWS, dtype=np.int64)
        out_a = a.filter_many(addresses, old.copy(), new.copy())
        out_b = b.filter_many(addresses, old.copy(), new.copy())
        assert np.array_equal(out_a, out_b)
        assert np.array_equal(a.stuck, b.stuck)
        assert a.stuck_events == b.stuck_events
        assert a.n_faulty == b.n_faulty

    def test_different_seed_different_map(self):
        a = make_model(seed=11)
        b = make_model(seed=12)
        rng = np.random.default_rng(3)
        old, new = random_rows(rng, ROWS), random_rows(rng, ROWS)
        addresses = np.arange(ROWS, dtype=np.int64)
        a.filter_many(addresses, old.copy(), new.copy())
        b.filter_many(addresses, old.copy(), new.copy())
        assert not np.array_equal(a.stuck, b.stuck)

    def test_fault_rate_sizes_the_population(self):
        assert make_model(fault_rate=0.0).n_faulty == 0
        dense = make_model(fault_rate=0.25)
        assert dense.n_faulty == round(0.25 * ROWS * COLS * 8)
        assert dense.pending_cells == dense.n_faulty


class TestStuckAtCurrent:
    def test_depleted_cells_keep_their_old_value(self):
        model = make_model(fault_rate=0.2)  # budget 0: born depleted
        rng = np.random.default_rng(5)
        old = random_rows(rng, 1)[0]
        new = random_rows(rng, 1)[0]
        actual = model.filter(0, old.copy(), new.copy())
        lost = np.unpackbits(actual ^ new)
        stuck = np.unpackbits(model.stuck[0])
        # Every bit that failed to land sits on a stuck cell and holds
        # the OLD value — data at rest is preserved, only the new bit
        # is lost.
        assert lost.sum() > 0
        assert np.all(lost <= stuck)
        assert np.array_equal(
            np.unpackbits(actual) * stuck, np.unpackbits(old) * stuck
        )

    def test_budget_absorbs_flips_before_sticking(self):
        generous = make_model(fault_budget=10_000, seed=21, fault_rate=0.2)
        rng = np.random.default_rng(5)
        old, new = random_rows(rng, 1)[0], random_rows(rng, 1)[0]
        actual = generous.filter(0, old.copy(), new.copy())
        # Budgets this deep mean no cell was driven past exhaustion:
        # the write lands perfectly (draws of 0 are possible but the
        # seed here draws none for row 0).
        assert generous.stuck_events == 0
        assert np.array_equal(actual, new)

    def test_frozen_cell_stays_frozen(self):
        model = make_model(fault_rate=0.2)
        rng = np.random.default_rng(7)
        old = random_rows(rng, 1)[0]
        first = model.filter(0, old.copy(), random_rows(rng, 1)[0].copy())
        stuck_after_first = model.stuck[0].copy()
        second = model.filter(0, first.copy(), random_rows(rng, 1)[0].copy())
        held = np.unpackbits(stuck_after_first)
        assert np.array_equal(
            np.unpackbits(second) * held, np.unpackbits(first) * held
        )

    def test_external_stuck_mask_is_honoured(self):
        stuck = np.zeros((ROWS, COLS), dtype=np.uint8)
        stuck[3, 0] = 0xFF
        model = make_model(stuck=stuck)
        old = np.zeros(COLS, dtype=np.uint8)
        new = np.full(COLS, 0xFF, dtype=np.uint8)
        actual = model.filter(3, old, new.copy())
        assert actual[0] == 0  # all eight bits frozen at old value
        # Pre-stuck cells were removed from the pending population.
        assert model.pending_cells < model.n_faulty


class TestFilterManyEquivalence:
    def test_batch_matches_sequential(self):
        batch = make_model(fault_rate=0.15)
        seq = make_model(fault_rate=0.15)
        rng = np.random.default_rng(9)
        old, new = random_rows(rng, ROWS), random_rows(rng, ROWS)
        addresses = np.arange(ROWS, dtype=np.int64)
        out_batch = batch.filter_many(addresses, old.copy(), new.copy())
        out_seq = np.stack([
            seq.filter(int(a), old[i].copy(), new[i].copy())
            for i, a in enumerate(addresses)
        ])
        assert np.array_equal(out_batch, out_seq)
        assert np.array_equal(batch.stuck, seq.stuck)
        assert batch.stuck_events == seq.stuck_events


class TestAgeing:
    def test_age_freezes_without_touching_data(self):
        model = make_model(fault_rate=0.1, fault_budget=50, seed=31)
        pending = model.pending_cells
        assert pending > 0
        frozen = model.age()
        assert frozen == pending
        assert model.pending_cells == 0
        # Ageing only marks cells stuck; the next write through them
        # keeps the old (preserved) value.
        old = np.zeros(COLS, dtype=np.uint8)
        new = np.full(COLS, 0xFF, dtype=np.uint8)
        rows_with_faults = {int(r) for r in np.flatnonzero(model.stuck.any(axis=1))}
        some_row = next(iter(rows_with_faults))
        actual = model.filter(some_row, old, new.copy())
        held = np.unpackbits(model.stuck[some_row])
        assert np.array_equal(np.unpackbits(actual) * held, np.zeros_like(held) * held)

    def test_age_scoped_to_addresses(self):
        model = make_model(fault_rate=0.1, fault_budget=50, seed=31)
        target = int(model._rows[0])
        frozen = model.age([target])
        assert frozen > 0
        assert model.probe(target) == frozen
        assert model.pending_cells > 0  # other rows untouched


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="fault_rate"):
            make_model(fault_rate=1.0)
        with pytest.raises(ValueError, match="fault_budget"):
            make_model(fault_budget=-1)
        with pytest.raises(ValueError, match="stuck mask"):
            make_model(stuck=np.zeros((2, 2), dtype=np.uint8))

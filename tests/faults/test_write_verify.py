"""Write-verify, relocation, retirement, degraded mode — single store.

The contract under test is the headline claim of the media layer:
**every acknowledged write remains readable with the exact bytes that
were acknowledged**, no matter how many weakened cells the payload
lands on.  Writes that cannot be made durable are *not* acknowledged —
they fail loudly (`PoolExhaustedError` prefix commit,
`DegradedModeError` shed) instead of lying.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import PNWConfig, PNWStore
from repro.errors import (
    ConfigError,
    DegradedModeError,
    KeyNotFoundError,
    PoolExhaustedError,
)
from tests.conftest import clustered_values


def media_config(**overrides) -> PNWConfig:
    base = dict(
        num_buckets=256,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        media_fault_rate=0.01,
        media_fault_budget=0,
        media_retire_watermark=1.0,
    )
    base.update(overrides)
    return PNWConfig(**base)


def warmed(config: PNWConfig) -> PNWStore:
    store = PNWStore(config)
    rng = np.random.default_rng(42)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


def hostile_pairs(rng: np.random.Generator, n: int,
                  width: int = 24, prefix: str = "k") -> list[tuple[bytes, bytes]]:
    """Uniform-random payloads: ~50% of bits flip on every write, so
    weakened cells are exercised as hard as possible."""
    values = rng.integers(0, 256, size=(n, width), dtype=np.uint8)
    return [(f"{prefix}{i}".encode(), values[i].tobytes()) for i in range(n)]


def strip_timing(report):
    return dataclasses.replace(report, predict_ns=0.0)


class TestAckedWritesStayReadable:
    def test_puts_and_updates_survive_depleted_cells(self):
        store = warmed(media_config())
        pairs = hostile_pairs(np.random.default_rng(1), 60)
        store.put_many(pairs)
        fresh = np.random.default_rng(2).integers(0, 256, (30, 24), dtype=np.uint8)
        updates = [(pairs[i][0], fresh[i].tobytes()) for i in range(30)]
        store.update_many(updates)
        expected = dict(pairs)
        expected.update(updates)
        for key, value in expected.items():
            assert store.get(key) == value
        # With 1% depleted cells and hostile payloads the verify path
        # must actually have fired — otherwise this test proves nothing.
        assert store.media_stats.verify_failures > 0
        assert store.media_stats.relocations > 0
        assert store.media_stats.rows_retired > 0
        assert store.media_stats.rows_retired == store.bad_rows.count

    def test_single_op_path_survives_too(self):
        store = warmed(media_config())
        pairs = hostile_pairs(np.random.default_rng(3), 40, prefix="s")
        for key, value in pairs:
            store.put(key, value)
        for key, value in pairs:
            assert store.get(key) == value
        assert store.media_stats.verify_failures > 0

    def test_latency_mode_update_verifies_in_place_rewrites(self):
        store = warmed(media_config(update_mode="latency"))
        pairs = hostile_pairs(np.random.default_rng(4), 40, prefix="l")
        store.put_many(pairs)
        fresh = np.random.default_rng(5).integers(0, 256, (40, 24), dtype=np.uint8)
        before = store.media_stats.verify_failures
        for i, (key, _) in enumerate(pairs):
            store.update(key, fresh[i].tobytes())
        for i, (key, _) in enumerate(pairs):
            assert store.get(key) == fresh[i].tobytes()
        # In-place rewrites hit the same weakened cells; the latency
        # verify hook must have caught (and relocated) some of them.
        assert store.media_stats.verify_failures > before


class TestRetirement:
    def test_retired_rows_leave_circulation(self):
        store = warmed(media_config())
        store.put_many(hostile_pairs(np.random.default_rng(6), 80))
        retired = store.bad_rows.retired_addresses()
        assert len(retired) > 0
        for address in retired:
            assert store.pool.is_blocked(int(address))
            with pytest.raises(ValueError):
                store.pool.release(int(address), 0)
        # No live key may sit on a condemned row.
        occupied = {int(a) for a in dict(store.index.items()).values()}
        assert occupied.isdisjoint({int(a) for a in retired})

    def test_retirement_survives_crash_recover(self):
        store = warmed(media_config())
        pairs = hostile_pairs(np.random.default_rng(7), 60)
        store.put_many(pairs)
        retired_before = store.bad_rows.retired_addresses()
        assert len(retired_before) > 0
        store.crash()
        store.recover()
        assert np.array_equal(store.bad_rows.retired_addresses(), retired_before)
        for address in retired_before:
            assert store.pool.is_blocked(int(address))
        for key, value in pairs:
            assert store.get(key) == value


class TestDegradedMode:
    def drive_to_degraded(self, store: PNWStore) -> dict[bytes, bytes]:
        """Put hostile batches until the watermark trips; returns every
        op acknowledged along the way."""
        acked: dict[bytes, bytes] = {}
        rng = np.random.default_rng(8)
        for round_no in range(200):
            pairs = hostile_pairs(rng, 5, prefix=f"d{round_no}-")
            try:
                store.put_many(pairs)
            except DegradedModeError as exc:
                for report in exc.committed_reports:
                    acked[report.key] = dict(pairs)[report.key]
                return acked
            acked.update(pairs)
        raise AssertionError("store never degraded")

    def test_watermark_flips_store_into_shedding(self):
        store = warmed(media_config(media_retire_watermark=0.02))  # 6 rows
        acked = self.drive_to_degraded(store)
        assert store.degraded
        assert store.bad_rows.count >= store._retire_limit
        # Writes shed loudly, with the honest empty-commit marker...
        with pytest.raises(DegradedModeError) as excinfo:
            store.put(b"late", b"\x00" * 24)
        assert excinfo.value.committed_reports == []
        with pytest.raises(DegradedModeError):
            store.update_many([(next(iter(acked)), b"\x11" * 24)])
        assert store.media_stats.writes_shed > 0
        # ...while reads and deletes still serve.
        for key, value in acked.items():
            assert store.get(key) == value
        victim = next(iter(acked))
        store.delete(victim)
        assert victim not in store

    def test_degraded_error_is_a_media_error(self):
        from repro.errors import MediaError

        assert issubclass(DegradedModeError, MediaError)


class TestPoolExhaustionPrefixCommit:
    def test_verified_prefix_is_acked_and_readable(self):
        # A tiny, heavily faulted store: relocations chew through the
        # pool until a batch can only be half-committed.
        config = media_config(
            num_buckets=24, media_fault_rate=0.08, n_clusters=2,
        )
        store = warmed(config)
        acked: dict[bytes, bytes] = {}
        rng = np.random.default_rng(9)
        exhausted = False
        for round_no in range(40):
            pairs = hostile_pairs(rng, 4, prefix=f"x{round_no}-")
            try:
                store.put_many(pairs)
            except PoolExhaustedError as exc:
                for report in exc.committed_reports:
                    acked[report.key] = dict(pairs)[report.key]
                exhausted = True
                break
            acked.update(pairs)
        assert exhausted, "pool never exhausted; fault pressure too low"
        # Everything acknowledged — including the partial batch's
        # verified prefix — reads back exactly.
        for key, value in acked.items():
            assert store.get(key) == value
        # Nothing beyond the acknowledged prefix leaked into the index.
        assert len(store) == len(acked)


class TestDisabledModelIsInert:
    def test_byte_identical_with_media_knobs_at_zero_rate(self):
        plain = warmed(media_config(media_fault_rate=0.0,
                                    media_fault_budget=0,
                                    media_retire_watermark=0.05))
        tuned = warmed(media_config(media_fault_rate=0.0,
                                    media_fault_budget=9,
                                    media_retire_watermark=0.33))
        for store in (plain, tuned):
            assert not store.config.media_enabled
        streams = []
        for store in (plain, tuned):
            pairs = hostile_pairs(np.random.default_rng(10), 50)
            reports = list(store.put_many(pairs))
            reports += store.update_many(
                [(pairs[i][0], pairs[-1 - i][1]) for i in range(20)]
            )
            reports += store.delete_many([key for key, _ in pairs[40:]])
            streams.append([strip_timing(r) for r in reports])
        assert streams[0] == streams[1]
        assert np.array_equal(plain.nvm.snapshot(), tuned.nvm.snapshot())
        assert dict(plain.index.items()) == dict(tuned.index.items())
        assert plain.nvm.stats.summary() == tuned.nvm.stats.summary()
        # The media machinery never fired.
        for store in (plain, tuned):
            assert store.media_stats.verify_failures == 0
            assert store.bad_rows.count == 0
            assert store.scrubber is None


class TestConfigGuards:
    def test_fault_rate_requires_seed(self):
        with pytest.raises(ConfigError, match="seed"):
            PNWConfig(num_buckets=64, value_bytes=8,
                      media_fault_rate=0.01, seed=None)

    def test_knob_validation(self):
        with pytest.raises(ConfigError, match="media_fault_rate"):
            media_config(media_fault_rate=1.5)
        with pytest.raises(ConfigError, match="media_fault_budget"):
            media_config(media_fault_budget=-2)
        with pytest.raises(ConfigError, match="media_retire_watermark"):
            media_config(media_retire_watermark=0.0)

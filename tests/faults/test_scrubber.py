"""Patrol scrubbing: latent-fault relocation, checksum alarms, lifecycle.

``store.nvm.age_media()`` is the test hook that freezes every pending
weakened cell *without* corrupting data — manufacturing exactly the
latent faults a patrol scrubber exists to find before a future write
tears them.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import BackgroundScrubber, PNWConfig, PNWStore
from repro.errors import DegradedModeError, MediaError
from tests.conftest import clustered_values


def media_config(**overrides) -> PNWConfig:
    base = dict(
        num_buckets=128,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        media_fault_rate=0.01,
        media_fault_budget=100,  # deep budgets: writes land, faults stay latent
        media_retire_watermark=1.0,
    )
    base.update(overrides)
    return PNWConfig(**base)


def warmed(config: PNWConfig) -> PNWStore:
    store = PNWStore(config)
    rng = np.random.default_rng(42)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


def populate(store: PNWStore, n: int = 50) -> dict[bytes, bytes]:
    rng = np.random.default_rng(1)
    values = rng.integers(0, 256, size=(n, 24), dtype=np.uint8)
    pairs = [(f"k{i}".encode(), values[i].tobytes()) for i in range(n)]
    store.put_many(pairs)
    return dict(pairs)


def wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("timed out waiting for condition")
        time.sleep(0.01)


class TestPatrolRelocation:
    def test_scrub_moves_rows_off_latent_faults(self):
        store = warmed(media_config())
        data = populate(store)
        frozen = store.nvm.age_media()
        assert frozen > 0
        summary = store.scrub()
        # Rows relocated to addresses ahead of the cursor get scanned
        # again within the same pass, so scanned >= live rows.
        assert summary["scanned"] >= len(data)
        assert summary["mismatches"] == 0
        assert summary["relocated"] > 0
        assert store.media_stats.latent_faults_found == summary["relocated"] + summary["deferred"]
        # Relocated rows were condemned; the data they held moved intact.
        assert store.media_stats.rows_retired >= summary["relocated"]
        for key, value in data.items():
            assert store.get(key) == value
        # A second pass finds a clean zone (relocation targets verified).
        second = store.scrub()
        assert second["relocated"] == 0
        assert second["mismatches"] == 0

    def test_scrub_limit_walks_incrementally(self):
        store = warmed(media_config())
        data = populate(store, 40)
        store.nvm.age_media()
        total_scanned = 0
        for _ in range(10):
            total_scanned += store.scrub(8)["scanned"]
            if total_scanned >= len(data):
                break
        assert total_scanned >= len(data)
        assert store.media_stats.scrub_passes >= 2
        for key, value in data.items():
            assert store.get(key) == value

    def test_scrub_on_fault_free_store_is_a_noop(self):
        store = warmed(media_config(media_fault_rate=0.0))
        populate(store, 10)
        assert store.scrub() == {
            "scanned": 0, "relocated": 0, "deferred": 0, "mismatches": 0,
        }


class TestChecksumAlarm:
    def test_inplace_corruption_raises_media_error(self):
        store = warmed(media_config())
        data = populate(store)
        victim = int(next(iter(dict(store.index.items()).values())))
        store.nvm._data[victim, 0] ^= 0x01  # silent in-place bit rot
        with pytest.raises(MediaError, match="checksum"):
            store.scrub()
        assert store.media_stats.checksum_mismatches > 0

    def test_recovery_rebuilds_and_retrusts_the_media(self):
        store = warmed(media_config())
        data = populate(store)
        store.crash()
        store.recover()
        # Checksums died with DRAM; recovery re-trusted the media, so a
        # full patrol pass is clean and the data is all there.
        summary = store.scrub()
        assert summary["mismatches"] == 0
        for key, value in data.items():
            assert store.get(key) == value


class TestDegradedCrossing:
    def test_scrub_retirements_can_trip_the_watermark(self):
        store = warmed(media_config(media_retire_watermark=0.02))  # 3 rows
        populate(store)
        store.nvm.age_media()
        with pytest.raises(DegradedModeError, match="watermark"):
            store.scrub()
        assert store.degraded
        # The pass still did its job before alarming: rows moved off
        # failing media and remain readable.
        assert store.media_stats.relocations > 0


class TestBackgroundScrubber:
    def test_patrols_and_relocates_in_the_background(self):
        store = warmed(media_config())
        data = populate(store)
        store.nvm.age_media()
        with BackgroundScrubber(store, interval=0.005, rows_per_pass=16) as bg:
            wait_for(lambda: store.media_stats.latent_faults_found > 0)
            wait_for(lambda: bg.passes >= 2)
        assert bg.last_error is None
        assert bg._thread is None  # stopped cleanly
        for key, value in data.items():
            assert store.get(key) == value

    def test_alarms_latch_instead_of_killing_the_thread(self):
        store = warmed(media_config())
        populate(store)
        victim = int(next(iter(dict(store.index.items()).values())))
        store.nvm._data[victim, 0] ^= 0x01
        bg = BackgroundScrubber(store, interval=0.005).start()
        try:
            wait_for(lambda: bg.last_error is not None)
            assert isinstance(bg.last_error, MediaError)
            passes_at_alarm = bg.passes
            # The patrol loop keeps going on a sick device.
            wait_for(lambda: bg.passes > passes_at_alarm)
        finally:
            bg.stop()

    def test_double_start_rejected(self):
        store = warmed(media_config())
        bg = BackgroundScrubber(store, interval=10.0).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                bg.start()
        finally:
            bg.stop()

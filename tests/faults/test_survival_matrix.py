"""Headline acceptance: acked writes survive wear-out everywhere.

Under a 1% depleted-budget fault injection, **every acknowledged
put/update must remain readable with the exact acknowledged bytes** —
across the thread and process executors, with and without the DRAM
tier (write-through and write-back), and across a crash/recover cycle.

Also pins the distributed corners: sharded degraded-mode merging, and
retirement state surviving a ``kill -9`` of a process worker (the
bitmap lives in the shared zone; the respawned worker re-blocks it).
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro import PNWConfig, make_store
from repro.errors import DegradedModeError
from tests.conftest import clustered_values

BACKENDS = ["single", "threads", "processes"]


def media_config(backend: str, **overrides) -> PNWConfig:
    base = dict(
        num_buckets=258,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        media_fault_rate=0.01,
        media_fault_budget=0,
        media_retire_watermark=1.0,
    )
    if backend != "single":
        base.update(shards=3,
                    executor="thread" if backend == "threads" else "process")
    base.update(overrides)
    return PNWConfig(**base)


def warmed(config: PNWConfig):
    store = make_store(config)
    rng = np.random.default_rng(42)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


def hostile_pairs(rng: np.random.Generator, n: int,
                  prefix: str = "k") -> list[tuple[bytes, bytes]]:
    values = rng.integers(0, 256, size=(n, 24), dtype=np.uint8)
    return [(f"{prefix}{i}".encode(), values[i].tobytes()) for i in range(n)]


def drive(store) -> dict[bytes, bytes]:
    """Mixed acked op stream; returns the expected final contents."""
    pairs = hostile_pairs(np.random.default_rng(11), 60)
    store.put_many(pairs)
    fresh = np.random.default_rng(12).integers(0, 256, (25, 24), dtype=np.uint8)
    updates = [(pairs[i][0], fresh[i].tobytes()) for i in range(25)]
    store.update_many(updates)
    store.delete_many([key for key, _ in pairs[45:55]])
    singles = hostile_pairs(np.random.default_rng(13), 6, prefix="s")
    for key, value in singles:
        store.put(key, value)
    expected = dict(pairs)
    expected.update(updates)
    for key, _ in pairs[45:55]:
        del expected[key]
    expected.update(singles)
    return expected


def assert_contents(store, expected: dict[bytes, bytes]) -> None:
    for key, value in expected.items():
        assert store.get(key) == value
    assert len(store) == len(expected)


def media_stats_of(store):
    stats = store.media_stats
    return stats() if callable(stats) else stats


def close(store) -> None:
    closer = getattr(store, "close", None)
    if closer is not None:
        closer()


def acked_value(pairs: list[tuple[bytes, bytes]], key: bytes) -> bytes:
    """Look up a report's (zero-padded) key in the submitted pairs."""
    width = len(key)
    return {k.ljust(width, b"\x00"): v for k, v in pairs}[key]


def wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("timed out waiting for condition")
        time.sleep(0.01)


@pytest.mark.parametrize("backend", BACKENDS)
class TestSurvivalAcrossExecutors:
    def test_acked_ops_readable_and_crash_safe(self, backend):
        store = warmed(media_config(backend))
        try:
            expected = drive(store)
            assert_contents(store, expected)
            stats = media_stats_of(store)
            assert stats.verify_failures > 0
            assert stats.rows_retired > 0
            store.crash()
            store.recover()
            assert_contents(store, expected)
            # The store keeps absorbing faults after recovery.
            post = hostile_pairs(np.random.default_rng(14), 10, prefix="post")
            store.put_many(post)
            for key, value in post:
                assert store.get(key) == value
        finally:
            close(store)

    def test_scrub_after_ageing_keeps_contents(self, backend):
        config = media_config(backend, media_fault_budget=100)
        store = warmed(config)
        try:
            expected = drive(store)
            if backend == "single":
                store.nvm.age_media()
            else:
                for shard in getattr(store, "stores", []):
                    if hasattr(shard, "nvm") and hasattr(shard.nvm, "age_media"):
                        shard.nvm.age_media()
            totals = store.scrub()
            assert totals["scanned"] > 0
            assert_contents(store, expected)
        finally:
            close(store)


@pytest.mark.parametrize("backend", ["single", "processes"])
@pytest.mark.parametrize("tier_mode", ["write_through", "write_back"])
class TestSurvivalUnderTheTier:
    def test_tiered_acked_ops_survive_faults_and_crash(self, backend, tier_mode):
        config = media_config(
            backend,
            tier_mode=tier_mode,
            tier_cache_entries=32,
            tier_writeback_entries=16,
            tier_flush_ops=4096,
        )
        store = warmed(config)
        try:
            expected = drive(store)
            assert_contents(store, expected)
            # Write-back staging is DRAM: only flushed data is durable,
            # so drain the buffer before pulling the plug.
            store.flush()
            stats = store.media_stats()
            assert stats.verify_failures > 0
            store.crash()
            store.recover()
            assert_contents(store, expected)
        finally:
            close(store)


class TestShardedDegradedMerge:
    def test_any_degraded_shard_degrades_the_store(self):
        store = warmed(media_config("threads", media_retire_watermark=0.02))
        try:
            rng = np.random.default_rng(15)
            shed = False
            acked: dict[bytes, bytes] = {}
            for round_no in range(300):
                pairs = hostile_pairs(rng, 6, prefix=f"d{round_no}-")
                try:
                    store.put_many(pairs)
                except DegradedModeError as exc:
                    for report in exc.committed_reports:
                        acked[report.key] = acked_value(pairs, report.key)
                    shed = True
                    break
                acked.update(pairs)
            assert shed, "no shard ever degraded"
            assert store.degraded
            assert media_stats_of(store).writes_shed > 0
            # Reads still serve everything that was acknowledged.
            for key, value in acked.items():
                assert store.get(key) == value
        finally:
            close(store)


class TestRetirementSurvivesWorkerDeath:
    def test_zone_bitmap_outlives_the_worker(self):
        store = warmed(media_config("processes", media_retire_watermark=0.03))
        try:
            rng = np.random.default_rng(16)
            acked: dict[bytes, bytes] = {}
            for round_no in range(300):
                pairs = hostile_pairs(rng, 6, prefix=f"w{round_no}-")
                try:
                    store.put_many(pairs)
                except DegradedModeError as exc:
                    for report in exc.committed_reports:
                        acked[report.key] = acked_value(pairs, report.key)
                    break
                acked.update(pairs)
            assert store.degraded
            retired_before = media_stats_of(store).rows_retired
            assert retired_before > 0
            # kill -9 every worker: DRAM state (budgets, counters) dies,
            # the retirement bitmap and stuck mask live in the zone.
            victims = list(store.stores)
            for client in victims:
                os.kill(client.pid, signal.SIGKILL)
            for client in victims:
                wait_for(lambda c=client: not c.is_alive())
            # Respawned workers reconstruct from the zone: still
            # degraded (bitmap persisted), still serving every ack.
            assert store.degraded
            for key, value in acked.items():
                assert store.get(key) == value
            with pytest.raises(DegradedModeError):
                store.put_many(hostile_pairs(rng, 3, prefix="late"))
        finally:
            close(store)

#!/usr/bin/env python
"""Quickstart: a PNW store in ~40 lines.

Creates a small simulated hybrid DRAM-NVM system, warms it with
clusterable "old data" (the paper's bootstrap, §VI-A), and walks through
PUT / GET / UPDATE / DELETE while printing what each operation cost in
programmed NVM cells — the currency PNW is designed to save.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PNWConfig, PNWStore, make_store


def main() -> None:
    rng = np.random.default_rng(7)

    # 1 KiB zone: 256 buckets of 56-byte values (+8-byte keys).
    config = PNWConfig(
        num_buckets=256,
        value_bytes=56,
        key_bytes=8,
        n_clusters=8,
        seed=7,
    )
    store = PNWStore(config)

    # Old data with cluster structure: 8 "sensor profiles" + bit noise.
    profiles = rng.integers(0, 256, size=(8, 56), dtype=np.uint8)
    noise = (rng.random((256, 56 * 8)) < 0.02).astype(np.uint8)
    old_data = profiles[rng.integers(0, 8, 256)] ^ np.packbits(noise, axis=1)
    store.warm_up(old_data)
    print(f"warmed {config.num_buckets} buckets; model trained with "
          f"K={store.manager.model.n_clusters} clusters")

    # PUT: the model steers the value to a similar free location.
    reading = profiles[3] ^ np.packbits(
        (rng.random(56 * 8) < 0.01).astype(np.uint8)
    )
    report = store.put(b"sensor-3", reading)
    print(f"PUT  sensor-3 -> address {report.address} "
          f"(cluster {report.cluster}): {report.bit_updates} cells "
          f"programmed of {config.bucket_bytes * 8} "
          f"({report.lines_touched} cache lines, "
          f"{report.nvm_latency_ns:.0f} ns NVM time, "
          f"{report.predict_ns / 1000:.1f} us model time)")

    # Compare with what a conventional write would have programmed.
    print(f"     a conventional write programs all "
          f"{config.bucket_bytes * 8} cells; DCW at a random location "
          f"programs ~half the differing bits of an unrelated profile")

    # GET goes through the hash index; reads never mutate state.
    value = store.get(b"sensor-3")
    assert value == reading.tobytes()
    print(f"GET  sensor-3 -> {len(value)} bytes (round-trip OK)")

    # UPDATE in endurance mode = DELETE + steered PUT (§V-B3).
    report = store.update(b"sensor-3", profiles[3])
    print(f"UPD  sensor-3 -> address {report.address}: "
          f"{report.bit_updates} cells programmed")

    # DELETE recycles the address into the cluster of its content.
    report = store.delete(b"sensor-3")
    print(f"DEL  sensor-3 -> address {report.address} recycled into "
          f"cluster {report.cluster}")

    # Batched writes: put_many featurizes the whole batch as one matrix
    # and predicts every cluster in a single K-Means call, yet leaves the
    # store byte-identical to the same puts issued one at a time.
    batch = []
    for i in range(64):
        noisy = profiles[i % 8] ^ np.packbits(
            (rng.random(56 * 8) < 0.01).astype(np.uint8)
        )
        batch.append((f"cam-{i}".encode(), noisy))
    reports = store.put_many(batch)
    mean_cells = np.mean([r.bit_updates for r in reports])
    print(f"PUT  x{len(reports)} (one put_many batch) -> "
          f"mean {mean_cells:.1f} cells programmed per write")

    # The batch API covers the full mutation surface.
    store.update_many([(key, profiles[0]) for key, _ in batch[:8]])
    store.delete_many([key for key, _ in batch])
    print(f"UPD  x8 / DEL x{len(batch)} (batched) -> "
          f"{store.pool.total_free} addresses free again")

    summary = store.nvm.stats.summary()
    print(f"\nzone totals: {summary['writes']:.0f} writes, "
          f"{summary['bit_updates']:.0f} cells programmed, "
          f"mean {summary['mean_bit_updates_per_write']:.1f} cells/write")

    # Sharded store: hash-partition the key space over 4 independent
    # zones (each with its own model, pool, index, and flag bitmap) and
    # run their batch pipelines concurrently.  Same API, global
    # addresses in reports, merged wear accounting.
    sharded = make_store(PNWConfig(
        num_buckets=256, value_bytes=56, key_bytes=8,
        n_clusters=4, seed=7, shards=4,
    ))
    sharded.warm_up(old_data)
    reports = sharded.put_many(batch)
    by_shard = [sum(1 for key, _ in batch
                    if sharded.shard_of_key(key) == s) for s in range(4)]
    print(f"\nSHARDED x{sharded.n_shards}: {len(reports)} PUTs routed "
          f"{by_shard} across shards, mean "
          f"{np.mean([r.bit_updates for r in reports]):.1f} cells/write")
    sharded.crash()
    sharded.recover()   # each shard rebuilds from its own NVM state
    merged = sharded.wear_summary()
    print(f"recovered {len(sharded)} keys; merged zone totals: "
          f"{merged['writes']:.0f} writes, "
          f"{merged['bit_updates']:.0f} cells programmed")
    sharded.close()


if __name__ == "__main__":
    main()

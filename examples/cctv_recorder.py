#!/usr/bin/env python
"""Multi-camera CCTV recorder on NVM: the paper's video scenario (§VI-C).

A DVR persists frames from several cameras into one PCM buffer.  A FIFO
ring buffer overwrites whatever frame is oldest — usually a *different*
camera's frame, so nearly every bit flips.  PNW clusters the buffer by
content, which naturally groups frames per camera (and per scene), and
steers each incoming frame onto a stale frame of the same camera — where
the static background already matches.

Run:  python examples/cctv_recorder.py [--frames N] [--cameras C]
"""

import argparse

import numpy as np

from repro.bench import run_pnw_stream, run_scheme_stream
from repro.workloads import SHERBROOKE, VideoProfile, VideoWorkload


def record_streams(
    cameras: list[VideoWorkload], n_frames: int, rng: np.random.Generator
) -> np.ndarray:
    """Interleave the cameras irregularly, like a motion-triggered DVR.

    Cameras fire at different rates, so a FIFO buffer slot usually holds a
    *different* camera's frame than the one arriving to overwrite it.
    """
    picks = rng.integers(0, len(cameras), size=n_frames)
    per_camera = [
        cam.generate(int((picks == i).sum())) for i, cam in enumerate(cameras)
    ]
    cursors = [0] * len(cameras)
    frames = np.empty((n_frames, cameras[0].item_bytes), dtype=np.uint8)
    for t, cam_id in enumerate(picks):
        frames[t] = per_camera[cam_id][cursors[cam_id]]
        cursors[cam_id] += 1
    return frames


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=480,
                        help="frames to record after warm-up")
    parser.add_argument("--buffer", type=int, default=240,
                        help="frames the NVM buffer holds")
    parser.add_argument("--cameras", type=int, default=4)
    args = parser.parse_args()

    cameras = [
        VideoWorkload(
            VideoProfile(name=f"cam{i}", width=SHERBROOKE.width,
                         height=SHERBROOKE.height, channels=1,
                         n_objects=SHERBROOKE.n_objects),
            seed=100 + i,
        )
        for i in range(args.cameras)
    ]
    frame_kb = cameras[0].item_bytes / 1024
    mux_rng = np.random.default_rng(42)
    warmup = record_streams(cameras, args.buffer, mux_rng)
    stream = record_streams(cameras, args.frames, mux_rng)

    print(f"DVR: {args.cameras} cameras, {frame_kb:.1f} KiB/frame, "
          f"{args.buffer}-frame NVM buffer, recording {args.frames} frames\n")

    # Baseline: FIFO ring buffer with data-comparison writes (the
    # strongest non-steering recorder).
    ring = run_scheme_stream(None, warmup, stream)

    # PNW: each frame steered onto the most similar stale frame.
    pnw, store = run_pnw_stream(
        warmup, stream, n_clusters=args.cameras * 2, seed=11,
        pca_components=32,
    )

    def row(name, metrics):
        print(f"  {name:18s} {metrics.bits_per_512:8.1f} bits/512b   "
              f"{metrics.lines_per_item:6.1f} lines/frame   "
              f"{metrics.nvm_latency_per_item / 1000:7.1f} us/frame")

    print(f"  {'recorder':18s} {'bit updates':>14s} {'cache lines':>16s} "
          f"{'NVM time':>16s}")
    row("FIFO ring buffer", ring)
    row("PNW recorder", pnw)

    saved_bits = 1 - pnw.bits_per_512 / ring.bits_per_512
    saved_lines = 1 - pnw.lines_per_item / ring.lines_per_item
    print(f"\nPNW saves {saved_bits:.0%} of programmed cells and "
          f"{saved_lines:.0%} of written cache lines")
    print(f"model prediction overhead: "
          f"{store.manager.mean_predict_ns / 1000:.1f} us/frame")

    # Endurance translates into lifetime: with PCM cells surviving ~1e8
    # writes, fewer programmed cells per frame = proportionally more
    # recorded hours before wear-out.
    lifetime_gain = ring.bits_per_512 / pnw.bits_per_512
    print(f"estimated recorder lifetime extension: {lifetime_gain:.1f}x")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""PNW vs persistent K/V stores in written cache lines (Fig. 9 scenario).

Runs the same insert-then-delete workload through four persistent K/V
designs — PNW (DRAM index architecture), path hashing, FPTree, and
NoveLSM — and reports the NVM cache lines each one wrote per request.

Run:  python examples/kv_store_comparison.py [--items N]
"""

import argparse

from repro.bench import run_kv_store_stream, run_pnw_kv_stream
from repro.stores import FPTreeStore, NoveLSMStore, PathHashKVStore
from repro.workloads import make_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--items", type=int, default=1200)
    parser.add_argument("--dataset", default="docwords",
                        choices=["normal", "docwords", "mnist", "amazon"])
    args = parser.parse_args()

    workload = make_workload(args.dataset, seed=13)
    values = workload.generate(args.items)
    print(f"workload: {args.dataset} ({workload.item_bytes}-byte values), "
          f"{args.items} inserts + {args.items // 2} deletes\n")

    results = {"PNW (Fig. 2a)": run_pnw_kv_stream(values, n_clusters=8, seed=13)}
    for cls in (PathHashKVStore, FPTreeStore, NoveLSMStore):
        store = cls(8, workload.item_bytes, capacity=int(args.items * 1.5))
        results[cls.name] = run_kv_store_stream(store, values)

    width = max(len(name) for name in results)
    baseline = results["PNW (Fig. 2a)"]
    print(f"{'store':{width}s}  {'lines/request':>14s}  {'vs PNW':>8s}")
    for name, lines in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"{name:{width}s}  {lines:14.2f}  {lines / baseline:7.1f}x")

    print("\nwhy: FPTree pays slot + fingerprint/bitmap commits and leaf-split"
          "\ncopies; NoveLSM pays log appends plus flush/compaction rewrites;"
          "\npath hashing writes once but wherever the hash lands; PNW writes"
          "\nonce at a location whose current bits already mostly match.")


if __name__ == "__main__":
    main()

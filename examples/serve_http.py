#!/usr/bin/env python
"""A minimal asyncio HTTP front door over the PNW store.

One event loop serves many concurrent clients: mutations are awaited
through :class:`repro.AsyncIngestQueue` (which coalesces them into
per-shard batches on the core queue's flusher thread) and GETs read
through the same admission layer, serialized per shard against
dispatch.  The point is the shape — an open socket in front of the
bounded, backpressured ingestion path — not a production HTTP stack.

Routes::

    PUT    /kv/<key>    body = value        -> 200 + JSON report
    POST   /kv/<key>    body = value        -> 200 + JSON report (update)
    GET    /kv/<key>                        -> 200 + raw value bytes
    DELETE /kv/<key>                        -> 200 + JSON report
    GET    /stats                           -> 200 + JSON counters

Missing keys map to 404, a full admission window (``shed`` policy) to
429, an expired admission deadline to 503.  Media-fault outcomes map
too: a store shedding writes in degraded mode answers 503 with a
``Retry-After`` header (the condition can clear — deletes or scrubbing
free healthy rows), and an unhideable media failure answers 507
Insufficient Storage.  ``GET /stats`` includes the media/scrubber
counters next to the ingest and tier blocks.

Run a server:   python examples/serve_http.py --port 8080
Run the demo:   python examples/serve_http.py --demo --clients 8

``--demo`` starts the server on an ephemeral port and drives it with
concurrent in-process HTTP clients issuing mixed GET/PUT/POST/DELETE
traffic over real sockets, verifying every read round-trips.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

import numpy as np

from repro import AsyncIngestQueue, PNWConfig, make_store
from repro.errors import (
    DeadlineExceededError,
    DegradedModeError,
    KeyNotFoundError,
    MediaError,
    QueueFullError,
    ReproError,
)

REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
           429: "Too Many Requests", 503: "Service Unavailable",
           507: "Insufficient Storage"}

#: Retry-After (seconds) for degraded-mode 503s: deletes or a scrub
#: pass can free healthy capacity, so clients should come back.
DEGRADED_RETRY_AFTER = 2

#: Largest request body the server will buffer; a declared
#: Content-Length beyond this is rejected before any read.
MAX_BODY_BYTES = 1 << 20


class _BadRequest(Exception):
    """Unparseable request framing; the connection can't be kept alive."""


def build_store(args):
    config = PNWConfig(
        num_buckets=args.buckets, value_bytes=args.value_bytes, key_bytes=16,
        n_clusters=8, seed=7, shards=args.shards, tier_mode=args.tier_mode,
    )
    store = make_store(config)
    rng = np.random.default_rng(7)
    profiles = rng.integers(
        0, 256, size=(8, args.value_bytes), dtype=np.uint8
    )
    old = profiles[rng.integers(0, 8, args.buckets)] ^ np.packbits(
        (rng.random((args.buckets, args.value_bytes * 8)) < 0.02).astype(
            np.uint8
        ),
        axis=1,
    )
    store.warm_up(old)
    return store


class KVServer:
    """Request handler bridging HTTP verbs onto the async ingest queue."""

    def __init__(self, queue: AsyncIngestQueue) -> None:
        self.queue = queue
        self.served = {"get": 0, "put": 0, "update": 0, "delete": 0,
                       "errors": 0}

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    # Framing is broken, so the stream position is
                    # untrustworthy: answer 400 and drop the connection
                    # instead of trying to keep it alive.
                    self.served["errors"] += 1
                    body = json.dumps({"error": str(exc)}).encode()
                    writer.write(
                        f"HTTP/1.1 400 {REASONS[400]}\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        "Connection: close\r\n\r\n".encode() + body
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                status, body, headers = await self._route(*request)
                extra = "".join(
                    f"{name}: {value}\r\n" for name, value in headers.items()
                )
                writer.write(
                    f"HTTP/1.1 {status} {REASONS[status]}\r\n"
                    f"Content-Length: {len(body)}\r\n{extra}"
                    "Connection: keep-alive\r\n\r\n".encode() + body
                )
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            writer.close()

    @staticmethod
    async def _read_request(reader):
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            method, path, _ = line.decode("ascii").split(" ", 2)
        except (ValueError, UnicodeDecodeError):
            raise _BadRequest("malformed request line") from None
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            try:
                name, _, value = header.decode("ascii").partition(":")
            except UnicodeDecodeError:
                raise _BadRequest("malformed header") from None
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _BadRequest("malformed Content-Length") from None
                if length < 0 or length > MAX_BODY_BYTES:
                    raise _BadRequest(
                        f"Content-Length outside [0, {MAX_BODY_BYTES}]"
                    )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    async def _route(self, method: str, path: str, body: bytes):
        try:
            if path == "/stats" and method == "GET":
                return 200, json.dumps(self._stats()).encode(), {}
            if not path.startswith("/kv/"):
                return 400, b'{"error": "unknown route"}', {}
            key = path[len("/kv/"):].encode()
            if method == "GET":
                value = await self.queue.get(key)
                self.served["get"] += 1
                return 200, value, {}
            if method == "PUT":
                report = await self.queue.put(key, body)
                self.served["put"] += 1
            elif method == "POST":
                report = await self.queue.update(key, body)
                self.served["update"] += 1
            elif method == "DELETE":
                report = await self.queue.delete(key)
                self.served["delete"] += 1
            else:
                return 400, b'{"error": "unsupported method"}', {}
            return 200, json.dumps(
                {"op": report.op, "address": report.address,
                 "cluster": report.cluster,
                 "bit_updates": report.bit_updates}
            ).encode(), {}
        except KeyNotFoundError:
            self.served["errors"] += 1
            return 404, b'{"error": "key not found"}', {}
        except QueueFullError:
            self.served["errors"] += 1
            return 429, b'{"error": "admission window full"}', {}
        except DeadlineExceededError:
            self.served["errors"] += 1
            return 503, b'{"error": "admission deadline exceeded"}', {}
        except DegradedModeError:
            # Before MediaError: degraded mode is its subclass, and —
            # unlike a raw media failure — it can clear, so tell the
            # client when to come back.
            self.served["errors"] += 1
            return (503, b'{"error": "store degraded: writes shed"}',
                    {"Retry-After": str(DEGRADED_RETRY_AFTER)})
        except MediaError as exc:
            self.served["errors"] += 1
            return (507, json.dumps({"error": str(exc)}).encode(), {})
        except (ReproError, ValueError) as exc:
            self.served["errors"] += 1
            return 400, json.dumps({"error": str(exc)}).encode(), {}

    def _stats(self) -> dict:
        """The /stats payload: request counters, the admission window's
        live state, the media/scrubber health block, and (when a DRAM
        tier is configured) its hit/flush accounting."""
        core = self.queue.queue
        store = core.store
        return {
            "served": self.served,
            "ingest": {
                "ops_submitted": core.ops_submitted,
                "ops_rejected": core.ops_rejected,
                "ops_retried": core.ops_retried,
                "pending_ops": core.pending_ops,
                "max_pending": core.max_pending,
                "batches_dispatched": core.batches_dispatched,
            },
            "media": self._media_stats(store),
            "tier": (
                store.tier_stats.as_dict()
                if hasattr(store, "tier_stats")
                else None
            ),
            "router": self._router_stats(store),
        }

    @staticmethod
    def _router_stats(store) -> dict | None:
        """Routing/rebalancing counters of a sharded (or tiered-over-
        sharded) store: per-shard routed ops, bucket moves, migrated
        keys, migration batch retries.  ``None`` for single-zone."""
        stats = getattr(store, "router_stats", None)
        if stats is None:
            return None
        snapshot = stats()
        if snapshot is None:
            return None
        block = snapshot.as_dict()
        block["routing_epoch"] = getattr(store, "routing_epoch", 0)
        return block

    @staticmethod
    def _media_stats(store) -> dict | None:
        """Media-health counters of whatever store backs the queue
        (plain attribute, sharded/tiered merge method, or absent)."""
        stats = getattr(store, "media_stats", None)
        if stats is None:
            return None
        if callable(stats):
            stats = stats()
        block = stats.as_dict()
        block["degraded"] = bool(getattr(store, "degraded", False))
        return block


# ---------------------------------------------------------------------- #
# demo client                                                             #
# ---------------------------------------------------------------------- #

async def http_call(host, port, method, path, body=b""):
    """One HTTP request on a fresh connection; returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n".encode()
            + body
        )
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode().partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        payload = await reader.readexactly(length) if length else b""
        return status, payload
    finally:
        writer.close()


async def demo_client(client_id, host, port, requests, value_bytes, stats):
    """Mixed PUT/GET/POST/DELETE traffic with read-your-write checks."""
    rng = np.random.default_rng(1000 + client_id)
    live = {}
    for i in range(requests):
        roll = rng.random()
        if live and roll < 0.25:
            key = f"c{client_id}-{rng.choice(sorted(live))}"
            status, payload = await http_call(host, port, "GET", f"/kv/{key}")
            assert status == 200, (status, payload)
            if payload != live[key.split("-", 1)[1]]:
                stats["mismatches"] += 1
            stats["gets"] += 1
        elif live and roll < 0.35:
            name = rng.choice(sorted(live))
            value = bytes(rng.integers(0, 256, value_bytes, dtype=np.uint8))
            status, _ = await http_call(
                host, port, "POST", f"/kv/c{client_id}-{name}", value
            )
            assert status == 200
            live[name] = value
            stats["updates"] += 1
        elif live and roll < 0.45:
            name = rng.choice(sorted(live))
            status, _ = await http_call(
                host, port, "DELETE", f"/kv/c{client_id}-{name}"
            )
            assert status == 200
            del live[name]
            stats["deletes"] += 1
        else:
            name = f"k{i}"
            value = bytes(rng.integers(0, 256, value_bytes, dtype=np.uint8))
            status, _ = await http_call(
                host, port, "PUT", f"/kv/c{client_id}-{name}", value
            )
            assert status == 200
            live[name] = value
            stats["puts"] += 1
    # A read of a key nobody wrote must 404, not crash the server.
    status, _ = await http_call(host, port, "GET", f"/kv/c{client_id}-nope")
    assert status == 404
    stats["misses"] += 1


async def run_demo(args) -> int:
    store = build_store(args)
    async with AsyncIngestQueue(
        store, max_batch=args.max_batch, max_delay=args.max_delay_ms / 1000.0,
        overload=args.overload,
    ) as queue:
        kv = KVServer(queue)
        server = await asyncio.start_server(kv.handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        print(f"serving on 127.0.0.1:{port} "
              f"({args.shards} shard(s), overload={args.overload})")
        stats = {"puts": 0, "gets": 0, "updates": 0, "deletes": 0,
                 "misses": 0, "mismatches": 0}
        async with server:
            await asyncio.gather(*(
                demo_client(c, "127.0.0.1", port, args.requests,
                            args.value_bytes, stats)
                for c in range(args.clients)
            ))
            status, payload = await http_call(
                "127.0.0.1", port, "GET", "/stats"
            )
            assert status == 200
        total = sum(v for k, v in stats.items() if k != "mismatches")
        print(f"HTTP demo: {args.clients} concurrent clients, "
              f"{total} requests "
              f"({stats['puts']} put / {stats['gets']} get / "
              f"{stats['updates']} update / {stats['deletes']} delete / "
              f"{stats['misses']} expected-404)")
        print(f"read-your-write mismatches={stats['mismatches']}")
        print(f"server counters: {payload.decode()}")
    if hasattr(store, "close"):
        store.close()
    return 1 if stats["mismatches"] else 0


async def run_server(args) -> int:
    store = build_store(args)
    async with AsyncIngestQueue(
        store, max_batch=args.max_batch, max_delay=args.max_delay_ms / 1000.0,
        overload=args.overload,
    ) as queue:
        server = await asyncio.start_server(
            KVServer(queue).handle, args.host, args.port
        )
        port = server.sockets[0].getsockname()[1]
        print(f"serving on {args.host}:{port} — PUT/GET/POST/DELETE "
              f"/kv/<key>, GET /stats (Ctrl-C to stop)")
        async with server:
            await server.serve_forever()
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--demo", action="store_true",
                        help="self-drive the server with concurrent clients")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per demo client")
    parser.add_argument("--buckets", type=int, default=4096)
    parser.add_argument("--value-bytes", type=int, default=32)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--tier-mode", default="off",
                        choices=["off", "write_through", "write_back",
                                 "predictive"],
                        help="DRAM tier placement policy for the store")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-delay-ms", type=float, default=2.0)
    parser.add_argument("--overload", default="block",
                        choices=["block", "shed", "deadline"])
    args = parser.parse_args()
    if args.demo:
        return asyncio.run(run_demo(args))
    try:
        return asyncio.run(run_server(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Workload drift and background retraining (the paper's Fig. 10 story).

A store trained on one data family (digit-like glyphs) suddenly starts
receiving a different family (apparel-like patches).  The stale model
steers badly — bit flips jump — until a retrain on the current zone
contents restores performance.  This example streams the four phases and
prints a small text chart of the rolling flip rate.

Run:  python examples/workload_shift.py
"""

import numpy as np

from repro.bench import PNWStreamSession
from repro.workloads import FashionLikeWorkload, MixtureWorkload, MNISTLikeWorkload


def bar(value: float, scale: float, width: int = 40) -> str:
    filled = int(min(value / scale, 1.0) * width)
    return "#" * filled


def main() -> None:
    mnist = MNISTLikeWorkload(seed=3)
    fashion = FashionLikeWorkload(seed=4)
    mixed = MixtureWorkload([mnist, fashion], weights=[1, 2], seed=5)

    # Algorithm-2 pool semantics (plain pop): the chart shows the cost of
    # cluster misprediction, which min-Hamming probing would mask.
    session = PNWStreamSession(mnist.generate(1400), n_clusters=20, seed=3,
                               pca_components=32, probe_limit=0)
    item_bits = (mnist.item_bytes + 8) * 8

    phases = [
        ("phase 1: in-distribution (digits)", mnist.generate(1300), False),
        ("phase 2: 2:1 foreign mix arrives", mixed.generate(2200), False),
        ("phase 3: all-foreign, stale model", fashion.generate(600), False),
        ("phase 4: retrained on new data", fashion.generate(1400), True),
    ]

    print("rolling bit updates per 512 bits (one row per 200 writes):\n")
    chart_scale = 200.0
    for title, items, retrain in phases:
        if retrain:
            session.store.retrain()
            print("        >>> model retrained on current zone contents <<<")
        per_item: list[int] = []
        session.run(items, per_item=per_item)
        series = np.asarray(per_item, dtype=np.float64) * 512.0 / item_bits
        print(f"{title}")
        for start in range(0, len(series), 200):
            window = series[start:start + 200]
            mean = float(window.mean())
            print(f"  {start:5d}  {mean:7.1f}  {bar(mean, chart_scale)}")

    metrics = session.store.metrics
    print(f"\ntotals: {metrics.puts} puts, {metrics.deletes} deletes, "
          f"{metrics.retrains} retrains, {metrics.fallbacks} pool fallbacks")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Streaming ingestion: single ops, batched throughput.

A streaming driver (sensor gateway, log shipper, CDC feed) produces one
K/V op at a time, but the PNW engine is fastest when fed whole batches.
This example drives a sharded store through :class:`repro.IngestQueue`:
ops are submitted singly and resolve through futures, while the queue
coalesces them into per-shard batches — under a size / latency-deadline
policy — and drains them through the store's concurrent shard pipelines.

Run:  python examples/streaming_ingest.py [--events 2000] [--shards 4]
"""

import argparse
import time

import numpy as np

from repro import IngestQueue, PNWConfig, make_store


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--events", type=int, default=2000)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--buckets", type=int, default=4096)
    parser.add_argument("--max-batch", type=int, default=128)
    parser.add_argument("--max-delay-ms", type=float, default=5.0)
    args = parser.parse_args()

    rng = np.random.default_rng(7)
    config = PNWConfig(
        num_buckets=args.buckets, value_bytes=56, key_bytes=8,
        n_clusters=8, seed=7, shards=args.shards,
    )
    store = make_store(config)

    # Warm with clusterable "old data" (the paper's bootstrap, §VI-A).
    profiles = rng.integers(0, 256, size=(8, 56), dtype=np.uint8)
    old = profiles[rng.integers(0, 8, args.buckets)] ^ np.packbits(
        (rng.random((args.buckets, 56 * 8)) < 0.02).astype(np.uint8), axis=1
    )
    store.warm_up(old)
    print(f"warmed {args.buckets} buckets across {args.shards} shard(s)")

    # The event stream: mostly fresh readings, some overwrites, a few
    # expiries — exactly the single-op shape a gateway produces.
    futures = []
    started = time.perf_counter()
    with IngestQueue(
        store,
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1000.0,
    ) as queue:
        live = []
        for i in range(args.events):
            value = profiles[i % 8] ^ np.packbits(
                (rng.random(56 * 8) < 0.01).astype(np.uint8)
            )
            roll = rng.random()
            if live and roll < 0.15:
                futures.append(queue.update(live[int(rng.integers(len(live)))], value))
            elif live and roll < 0.25:
                futures.append(queue.delete(live.pop(0)))
            else:
                key = f"ev-{i}".encode()
                futures.append(queue.put(key, value))
                live.append(key)
        queue.flush()
        reports = [future.result() for future in futures]
        elapsed = time.perf_counter() - started
        print(f"streamed {len(reports)} single ops in {elapsed:.2f}s "
              f"({len(reports) / elapsed:.0f} ops/s) via "
              f"{queue.batches_dispatched} coalesced batches "
              f"(~{queue.ops_submitted / max(1, queue.batches_dispatched):.0f} "
              f"ops/batch)")

    puts = [r for r in reports if r.op == "put"]
    print(f"steered writes: mean {np.mean([r.bit_updates for r in puts]):.1f} "
          f"cells programmed per PUT "
          f"(of {config.bucket_bytes * 8} in the bucket)")
    free = (
        store.total_free if hasattr(store, "total_free")
        else store.pool.total_free
    )
    print(f"live keys: {len(store)}; free addresses: {free}")

    # Every future resolved to the same OperationReport a direct batch
    # call would have returned — the queue is invisible to accounting.
    merged = (
        store.wear_summary() if hasattr(store, "wear_summary")
        else store.nvm.stats.summary()
    )
    print(f"zone totals: {merged['writes']:.0f} writes, "
          f"{merged['bit_updates']:.0f} cells programmed")
    if hasattr(store, "close"):
        store.close()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Wear-leveling report: address- and bit-level CDFs (Figures 12/13).

Streams a mixed image workload through PNW with per-bit wear tracking
enabled and prints the wear distribution of the simulated PCM chip —
the view a device vendor would use to estimate lifetime.

Run:  python examples/wear_leveling_report.py [--k N]
"""

import argparse

import numpy as np

from repro.bench import run_pnw_stream
from repro.nvm.stats import cdf_of_counts
from repro.workloads import FashionLikeWorkload, MixtureWorkload, MNISTLikeWorkload


def print_cdf(name: str, counts: np.ndarray, thresholds: list[int]) -> None:
    print(f"\n{name}:")
    print(f"  max = {int(counts.max())}, mean = {counts.mean():.2f}")
    for t in thresholds:
        frac = float((counts <= t).mean())
        print(f"  P(X <= {t:2d}) = {frac:6.1%}  {'#' * int(frac * 40)}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=10, help="clusters")
    parser.add_argument("--buckets", type=int, default=700)
    parser.add_argument("--updates-per-bucket", type=int, default=4)
    args = parser.parse_args()

    mixed = MixtureWorkload(
        [MNISTLikeWorkload(seed=1), FashionLikeWorkload(seed=2)], seed=3
    )
    old = mixed.generate(args.buckets)
    new = mixed.generate(args.buckets * args.updates_per_bucket)

    print(f"streaming {len(new)} writes over {args.buckets} buckets "
          f"(k={args.k}, ~{args.updates_per_bucket} updates/bucket)")
    _, store = run_pnw_stream(old, new, args.k, seed=1,
                              track_bit_wear=True, pca_components=32)

    stats = store.nvm.stats
    print_cdf("per-address write counts (Fig. 12)",
              stats.writes_per_address, [2, 5, 10, 15])
    print_cdf("per-bit update counts (Fig. 13)",
              stats.bit_wear.ravel(), [1, 2, 4, 8])

    values, cum = cdf_of_counts(stats.writes_per_address)
    p99 = int(values[np.searchsorted(cum, 0.99)])
    endurance = 1e8  # PCM cell endurance, Table I
    print(f"\np99 address write count: {p99}")
    print(f"at this wear profile, the chip's hottest addresses reach the "
          f"{endurance:.0e}-cycle\nendurance limit after "
          f"~{endurance / max(p99, 1) * len(new) / 1e9:.1f}B more writes "
          f"of this workload")


if __name__ == "__main__":
    main()

"""Setup shim for legacy editable installs.

The offline environment ships setuptools 65.5 without the ``wheel``
package, so PEP 660 editable installs fail; ``pip install -e .`` falls
back to this shim. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
